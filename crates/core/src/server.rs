use crate::durability::{get_writes, put_writes, DurableLog, WalOp};
use crate::metrics::{ServerMetrics, ServerTrace, TxEvent, TRACE_RING_EVENTS};
use crate::{VisibilitySampler, WrenConfig};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;
use wren_clock::{HybridClock, PhysicalClock, SkewedClock, Timestamp, VersionVector};
use wren_protocol::codec::{CodecError, Dec, Enc};
use wren_protocol::{
    ClientId, DcId, Dest, Key, Outgoing, PartitionId, RepTx, ReplicateBatch, ServerId, TxId,
    Value, WrenMsg, WrenVersion,
};
use wren_storage::{ConcurrentShardedStore, FsyncPolicy, SnapshotBound};

/// Counters exposed by a server for test assertions and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Transactions this server coordinated to commit.
    pub txs_coordinated: u64,
    /// Transactions this server committed as a cohort.
    pub txs_cohort_committed: u64,
    /// Slice requests served (local and remote coordinators).
    pub slices_served: u64,
    /// Individual keys read.
    pub keys_read: u64,
    /// Local versions applied by the replication tick.
    pub local_versions_applied: u64,
    /// Remote versions applied from replication batches.
    pub remote_versions_applied: u64,
    /// Replication batches shipped to sibling replicas.
    pub replicate_batches_sent: u64,
    /// Heartbeats shipped to sibling replicas.
    pub heartbeats_sent: u64,
    /// Versions removed by garbage collection.
    pub gc_versions_removed: u64,
    /// WAL records appended (0 unless the server runs durable).
    pub wal_records_logged: u64,
    /// Checkpoints written (0 unless the server runs durable).
    pub checkpoints_written: u64,
}

/// The read-only slice path's instrumentation, shared between the server
/// and its [`SliceReader`] handles.
///
/// Registry metrics (lock-free atomics underneath) rather than plain
/// fields so the slice path needs no `&mut`: with a parallel read
/// engine, several workers bump them concurrently while the writer
/// thread owns the rest of [`ServerStats`]. The handles alias the
/// server's registry, so engine-served reads show up in the partition's
/// merged snapshot.
#[derive(Debug)]
struct ReadPathStats {
    slices_served: wren_obs::Counter,
    keys_read: wren_obs::Counter,
    read_slice_micros: wren_obs::Histogram,
}

/// A cheap, cloneable handle answering read slices **straight from
/// storage**, without touching the owning [`WrenServer`]'s mutable state.
///
/// This is the paper's nonblocking-read guarantee made thread-level: a
/// slice at snapshot `(lt, rt)` only names versions every partition has
/// already installed, so serving it needs the concurrent store (shared
/// `Arc`), the DC id (fixed) and the slice counters (atomic) — nothing
/// the writer thread mutates. `wren-rt`'s partition engine hands one
/// handle to each of its read workers; [`WrenServer::handle`] uses the
/// same code path for `SliceReq` when no engine is attached.
#[derive(Debug, Clone)]
pub struct SliceReader {
    dc: u8,
    store: Arc<ConcurrentShardedStore<Key, WrenVersion>>,
    read_stats: Arc<ReadPathStats>,
}

impl SliceReader {
    /// Algorithm 3 lines 1–12: the freshest visible version of each key
    /// at snapshot `(lt, rt)`. Never blocks — neither on the protocol
    /// (the snapshot is stable) nor on the writer thread (only stripe
    /// read locks are taken).
    ///
    /// Also raises the store's published stable times to `(lt, rt)`,
    /// mirroring what a `SliceReq` does on the writer path: a slice
    /// request is proof those times are stable DC-wide. The one
    /// writer-path side effect this handle cannot reproduce is the
    /// [`VisibilitySampler`](crate::VisibilitySampler) advance — the
    /// sampler is figures-only instrumentation, `&mut`, and disabled
    /// (`sample_every = 0`) wherever engines run; drivers that sample
    /// visibility (the simulator) serve slices on the writer path.
    pub fn read_slice(
        &self,
        keys: &[Key],
        lt: Timestamp,
        rt: Timestamp,
    ) -> Vec<(Key, Option<WrenVersion>)> {
        let start = std::time::Instant::now();
        self.store.publish_stable(lt, rt);
        self.read_stats.slices_served.inc();
        self.read_stats.keys_read.add(keys.len() as u64);
        let bound = SnapshotBound::bist(self.dc, lt, rt);
        let mut items = Vec::with_capacity(keys.len());
        for &k in keys {
            items.push((k, self.store.latest_visible(&k, &bound)));
        }
        self.read_stats
            .read_slice_micros
            .record(start.elapsed().as_micros() as u64);
        items
    }

    /// Serves one `SliceReq`, producing the `SliceResp` to send back to
    /// the coordinator.
    pub fn serve(
        &self,
        tx: TxId,
        lt: Timestamp,
        rt: Timestamp,
        keys: &[Key],
    ) -> WrenMsg {
        let items = self.read_slice(keys, lt, rt);
        WrenMsg::SliceResp { tx, items }
    }

    /// Slice requests served so far through the shared counters (all
    /// readers and the writer path combined).
    pub fn slices_served(&self) -> u64 {
        self.read_stats.slices_served.get()
    }

    /// Keys read so far through the shared counters.
    pub fn keys_read(&self) -> u64 {
        self.read_stats.keys_read.get()
    }
}

/// Per-transaction coordinator context (the paper's `TX[id_T]`, extended
/// with the bookkeeping for asynchronous slice/prepare fan-out).
#[derive(Debug)]
struct TxCtx {
    client: ClientId,
    lt: Timestamp,
    rt: Timestamp,
    /// Outstanding slice responses for the in-flight read round.
    pending_slices: usize,
    read_acc: Vec<(Key, Option<WrenVersion>)>,
    /// Outstanding prepare responses for the in-flight commit.
    pending_prepares: usize,
    max_pt: Timestamp,
    cohorts: Vec<PartitionId>,
    /// Cohorts whose network vote already arrived, so a recovered
    /// cohort's periodic re-send cannot double-count.
    responded: Vec<PartitionId>,
    /// When the context last entered a server-driven phase (start, or
    /// the 2PC fan-out), for the coordinator's in-doubt abort timer.
    since: u64,
}

/// A prepared transaction awaiting its commit message (the paper's
/// `Prepared` list, Algorithm 3 line 18).
#[derive(Debug, Clone)]
struct PreparedTx {
    pt: Timestamp,
    rst: Timestamp,
    writes: Vec<(Key, Value)>,
    /// When the vote was (last) sent, for the durable-mode re-send of
    /// `PrepareResp` after a coordinator restart.
    since: u64,
}

/// A committed transaction awaiting application (the paper's `Committed`
/// list).
#[derive(Debug, Clone)]
struct CommittedTx {
    rst: Timestamp,
    writes: Vec<(Key, Value)>,
    /// True time the commit verdict arrived here (0 after a replay —
    /// recovered entries skip the apply-stage histogram).
    committed_at: u64,
}

/// A Wren partition server: the state machine of Algorithms 2–4.
///
/// The server is **sans-io**: [`WrenServer::handle`] consumes one message
/// plus the current true time and appends outgoing messages to `out`;
/// the periodic behaviours are explicit methods
/// ([`on_replication_tick`](WrenServer::on_replication_tick),
/// [`on_gossip_tick`](WrenServer::on_gossip_tick),
/// [`on_gc_tick`](WrenServer::on_gc_tick)) that a driver calls on its own
/// schedule. Physical time is read through a [`SkewedClock`], so clock
/// skew between servers is part of the model.
///
/// Key invariant (the reason reads never block): once the version clock
/// `VV[m]` is advanced to `ub`, no transaction will ever commit on this
/// partition with `ct ≤ ub`. The LST (a min over version clocks) therefore
/// only ever names fully-installed snapshots.
#[derive(Debug)]
pub struct WrenServer {
    id: ServerId,
    cfg: WrenConfig,
    clock: SkewedClock,
    hlc: HybridClock,
    /// `VV[i]`: latest update applied from DC `i`'s sibling; `VV[m]` is the
    /// local version clock.
    vv: VersionVector,
    /// The partition's data plus the published LST/RST watermarks. Shared
    /// (`Arc`) so [`SliceReader`] handles serve reads from other threads;
    /// the server itself is the only writer.
    store: Arc<ConcurrentShardedStore<Key, WrenVersion>>,
    /// Slice-path counters, shared with [`SliceReader`] handles.
    read_stats: Arc<ReadPathStats>,
    prepared: HashMap<TxId, PreparedTx>,
    committed: BTreeMap<(Timestamp, TxId), CommittedTx>,
    next_seq: u64,
    tx_ctx: HashMap<TxId, TxCtx>,
    /// Latest BiST contribution `(VV[m], min_{i≠m} VV[i])` per partition.
    gossip_contrib: Vec<(Timestamp, Timestamp)>,
    /// Latest GC contribution `(oldest lt, oldest rt)` per partition.
    gc_contrib: Vec<(Timestamp, Timestamp)>,
    stats: ServerStats,
    vis: VisibilitySampler,
    /// Sibling replicas of this partition in every other DC (fixed for
    /// the server's lifetime; computed once).
    siblings: Vec<ServerId>,
    /// Every other partition of this DC (fixed; computed once).
    peers: Vec<ServerId>,
    /// Children in the k-ary stabilization tree (fixed; computed once).
    children: Vec<ServerId>,
    /// Scratch buckets for grouping a read-set by partition, reused
    /// across transactions so the per-read grouping allocates nothing.
    scratch_reads: Vec<Vec<Key>>,
    /// Scratch buckets for grouping a write-set by partition.
    scratch_writes: Vec<Vec<(Key, Value)>>,
    /// Scratch buffer for flattening a replication batch before the
    /// store-level batch apply, reused across batches.
    scratch_apply: Vec<(Key, WrenVersion)>,
    /// The durability log, when this server runs durable (see the
    /// [`durability`](crate::durability) module docs for the layering).
    log: Option<DurableLog>,
    /// Commit decisions made here as coordinator (logged durably before
    /// any `Commit` leaves), kept so a recovered cohort can re-learn an
    /// outcome by re-sending its vote. Pruned once the LST passes `ct`:
    /// a cohort still waiting would pin its `ub` — hence the DC's LST —
    /// below `ct`, so LST > ct proves every cohort committed.
    decided: HashMap<TxId, Timestamp>,
    /// Per-DC flags: `true` while a post-restart catch-up from that
    /// DC's sibling is in flight (its heartbeats are ignored and its
    /// version-vector entry frozen until `CatchUpDone`).
    awaiting: Vec<bool>,
    /// The last `(lst, rst)` written to the WAL, so stable advances are
    /// logged only when they change.
    last_logged_stable: (Timestamp, Timestamp),
    /// How long a coordinator waits on missing prepare votes before
    /// aborting the transaction (see [`WrenServer::set_tx_abort_timeout`]).
    tx_abort_timeout_micros: u64,
    /// Per-DC time the last `CatchUpReq` was sent, so an open catch-up
    /// window whose request died on a broken or parked link is re-asked
    /// periodically instead of freezing the lane forever.
    catchup_sent: Vec<u64>,
    /// Pre-resolved lock-free metric handles (see [`crate::metrics`]).
    metrics: ServerMetrics,
    /// Tx-lifecycle trace ring, dumped by failing chaos oracles.
    trace: ServerTrace,
    /// The last `(lst, rst)` traced/sampled, so visibility-lag metrics
    /// and `Stable` trace events fire once per advance, not per tick.
    last_traced_stable: (Timestamp, Timestamp),
}

/// Default coordinator in-doubt abort timeout: long enough that no
/// healthy 2PC round (microseconds on loopback) ever trips it, short
/// enough that a cohort crash does not pin the DC's LST for long.
const DEFAULT_TX_ABORT_TIMEOUT_MICROS: u64 = 3_000_000;

impl WrenServer {
    /// Creates the replica of partition `id.partition` in DC `id.dc`.
    ///
    /// `clock` is this server's (possibly skewed) physical clock.
    pub fn new(id: ServerId, cfg: WrenConfig, clock: SkewedClock) -> Self {
        let n = cfg.n_partitions as usize;
        let siblings: Vec<ServerId> = (0..cfg.n_dcs)
            .filter(|dc| *dc != id.dc.0)
            .map(|dc| ServerId {
                dc: wren_protocol::DcId(dc),
                partition: id.partition,
            })
            .collect();
        let peers: Vec<ServerId> = (0..cfg.n_partitions)
            .filter(|p| *p != id.partition.0)
            .map(|p| ServerId {
                dc: id.dc,
                partition: wren_protocol::PartitionId(p),
            })
            .collect();
        let children = Self::compute_tree_children(id, &cfg);
        let metrics = ServerMetrics::new();
        let read_stats = Arc::new(ReadPathStats {
            slices_served: metrics.slices_served.clone(),
            keys_read: metrics.keys_read.clone(),
            read_slice_micros: metrics.read_slice_micros.clone(),
        });
        WrenServer {
            id,
            cfg,
            clock,
            hlc: HybridClock::new(),
            vv: VersionVector::new(cfg.n_dcs as usize),
            store: Arc::new(ConcurrentShardedStore::new()),
            read_stats,
            prepared: HashMap::new(),
            committed: BTreeMap::new(),
            next_seq: 1,
            tx_ctx: HashMap::new(),
            gossip_contrib: vec![(Timestamp::ZERO, Timestamp::ZERO); n],
            gc_contrib: vec![(Timestamp::ZERO, Timestamp::ZERO); n],
            stats: ServerStats::default(),
            vis: VisibilitySampler::new(cfg.visibility_sample_every),
            siblings,
            peers,
            children,
            scratch_reads: vec![Vec::new(); n],
            scratch_writes: vec![Vec::new(); n],
            scratch_apply: Vec::new(),
            log: None,
            decided: HashMap::new(),
            awaiting: vec![false; cfg.n_dcs as usize],
            last_logged_stable: (Timestamp::ZERO, Timestamp::ZERO),
            tx_abort_timeout_micros: DEFAULT_TX_ABORT_TIMEOUT_MICROS,
            catchup_sent: vec![0; cfg.n_dcs as usize],
            metrics,
            trace: ServerTrace::new(TRACE_RING_EVENTS),
            last_traced_stable: (Timestamp::ZERO, Timestamp::ZERO),
        }
    }

    /// Children of `id.partition` in the k-ary stabilization tree (empty
    /// in broadcast mode).
    fn compute_tree_children(id: ServerId, cfg: &WrenConfig) -> Vec<ServerId> {
        let f = cfg.gossip_fanout;
        if f == 0 {
            return Vec::new();
        }
        let i = id.partition.0 as u32;
        let n = cfg.n_partitions as u32;
        (1..=f as u32)
            .map(|k| i * f as u32 + k)
            .filter(|c| *c < n)
            .map(|c| ServerId {
                dc: id.dc,
                partition: wren_protocol::PartitionId(c as u16),
            })
            .collect()
    }

    /// This server's identity.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Current local stable time (LST) known to this server.
    pub fn lst(&self) -> Timestamp {
        self.store.lst()
    }

    /// Current remote stable time (RST) known to this server.
    pub fn rst(&self) -> Timestamp {
        self.store.rst()
    }

    /// The local version clock `VV[m]` (the snapshot installed locally).
    pub fn version_clock(&self) -> Timestamp {
        self.vv.get(self.dc_index())
    }

    /// Counters for reporting. Slice-path counters are folded in from the
    /// shared atomics, so reads served by engine workers are included.
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.stats;
        stats.slices_served = self.read_stats.slices_served.get();
        stats.keys_read = self.read_stats.keys_read.get();
        stats.wal_records_logged = self.log.as_ref().map_or(0, |l| l.records_logged());
        stats
    }

    /// This partition's live metric registry (cheap clone; the cluster
    /// merges per-partition snapshots into [`wren_obs::MetricsSnapshot`]).
    pub fn registry(&self) -> wren_obs::Registry {
        self.metrics.registry().clone()
    }

    /// The pre-resolved metric handles (drivers record session-adjacent
    /// quantities through the same registry).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// This partition's tx-lifecycle trace ring (cheap clone).
    pub fn trace(&self) -> ServerTrace {
        self.trace.clone()
    }

    /// A cheap handle serving read slices from any thread, straight from
    /// this server's shared store (see [`SliceReader`]).
    pub fn reader(&self) -> SliceReader {
        SliceReader {
            dc: self.id.dc.0,
            store: Arc::clone(&self.store),
            read_stats: Arc::clone(&self.read_stats),
        }
    }

    /// The visibility sampler (Fig. 7b data).
    pub fn visibility(&self) -> &VisibilitySampler {
        &self.vis
    }

    /// Mutable access to the visibility sampler (warm-up resets).
    pub fn visibility_mut(&mut self) -> &mut VisibilitySampler {
        &mut self.vis
    }

    /// Read-only access to the store (convergence checks in tests).
    pub fn store(&self) -> &ConcurrentShardedStore<Key, WrenVersion> {
        &self.store
    }

    /// Number of transactions currently prepared but not committed.
    pub fn prepared_len(&self) -> usize {
        self.prepared.len()
    }

    /// Number of transactions committed but not yet applied.
    pub fn committed_len(&self) -> usize {
        self.committed.len()
    }

    fn dc_index(&self) -> usize {
        self.id.dc.index()
    }

    fn partition_of(&self, key: Key) -> PartitionId {
        key.partition(self.cfg.n_partitions)
    }

    fn server(&self, partition: PartitionId) -> ServerId {
        ServerId {
            dc: self.id.dc,
            partition,
        }
    }

    fn raise_stable(&mut self, lst: Timestamp, rst: Timestamp, now_micros: u64) {
        self.store.publish_stable(lst, rst);
        self.vis.advance(self.store.lst(), self.store.rst(), now_micros);
    }

    /// Handles one protocol message arriving from `from` at true time
    /// `now_micros`, appending any responses to `out`.
    pub fn handle(
        &mut self,
        from: Dest,
        msg: WrenMsg,
        now_micros: u64,
        out: &mut Vec<Outgoing<WrenMsg>>,
    ) {
        match msg {
            WrenMsg::StartTxReq { lst, rst } => {
                let Dest::Client(client) = from else {
                    debug_assert!(false, "StartTxReq must come from a client");
                    return;
                };
                self.on_start(client, lst, rst, now_micros, out);
            }
            WrenMsg::TxReadReq { tx, keys } => self.on_read(tx, keys, now_micros, out),
            WrenMsg::SliceReq { tx, lt, rt, keys } => {
                let Dest::Server(coord) = from else {
                    debug_assert!(false, "SliceReq must come from a server");
                    return;
                };
                self.raise_stable(lt, rt, now_micros);
                let items = self.read_slice(&keys, lt, rt);
                out.push(Outgoing::to_server(coord, WrenMsg::SliceResp { tx, items }));
            }
            WrenMsg::SliceResp { tx, items } => self.on_slice_resp(tx, items, out),
            WrenMsg::CommitReq { tx, hwt, writes } => {
                self.on_commit_req(tx, hwt, writes, now_micros, out)
            }
            WrenMsg::PrepareReq {
                tx,
                lt,
                rt,
                ht,
                writes,
            } => {
                let Dest::Server(coord) = from else {
                    debug_assert!(false, "PrepareReq must come from a server");
                    return;
                };
                let pt = self.prepare(tx, lt, rt, ht, writes, now_micros);
                out.push(Outgoing::to_server(coord, WrenMsg::PrepareResp { tx, pt }));
            }
            WrenMsg::PrepareResp { tx, pt } => {
                let Dest::Server(cohort) = from else {
                    debug_assert!(false, "PrepareResp must come from a server");
                    return;
                };
                self.on_prepare_resp(tx, pt, Some(cohort), now_micros, out)
            }
            WrenMsg::Commit { tx, ct } => self.commit(tx, ct, now_micros),
            WrenMsg::Replicate { batch } => {
                let Dest::Server(sibling) = from else {
                    debug_assert!(false, "Replicate must come from a server");
                    return;
                };
                self.on_replicate(sibling, batch, now_micros);
            }
            WrenMsg::Heartbeat { t } => {
                let Dest::Server(sibling) = from else {
                    debug_assert!(false, "Heartbeat must come from a server");
                    return;
                };
                // During a catch-up window that DC's heartbeats are
                // ignored: `t` vouches for versions that may have died
                // in the crashed process's inbox and are still being
                // re-shipped; the vector entry unfreezes at CatchUpDone.
                if !self.awaiting[sibling.dc.index()] {
                    self.vv.raise(sibling.dc.index(), t);
                }
            }
            WrenMsg::StableGossip { local, remote } => {
                let Dest::Server(peer) = from else {
                    debug_assert!(false, "StableGossip must come from a server");
                    return;
                };
                self.gossip_contrib[peer.partition.index()] = (local, remote);
                self.recompute_stable(now_micros);
            }
            WrenMsg::GossipUp { local, remote } => {
                let Dest::Server(child) = from else {
                    debug_assert!(false, "GossipUp must come from a server");
                    return;
                };
                // A child's subtree minimum; folded in at the next tick.
                self.gossip_contrib[child.partition.index()] = (local, remote);
            }
            WrenMsg::GossipDown { lst, rst } => {
                // The root's DC-wide stable times: adopt and cascade to
                // our own children immediately (GentleRain-style).
                self.raise_stable(lst, rst, now_micros);
                for &child in &self.children {
                    out.push(Outgoing::to_server(child, WrenMsg::GossipDown { lst, rst }));
                }
            }
            WrenMsg::GcGossip {
                oldest_lt,
                oldest_rt,
            } => {
                let Dest::Server(peer) = from else {
                    debug_assert!(false, "GcGossip must come from a server");
                    return;
                };
                self.gc_contrib[peer.partition.index()] = (oldest_lt, oldest_rt);
            }
            WrenMsg::CatchUpReq { from: horizon } => {
                let Dest::Server(requester) = from else {
                    debug_assert!(false, "CatchUpReq must come from a server");
                    return;
                };
                self.on_catch_up_req(requester, horizon, out);
            }
            WrenMsg::CatchUpDone { t } => {
                let Dest::Server(sibling) = from else {
                    debug_assert!(false, "CatchUpDone must come from a server");
                    return;
                };
                self.on_catch_up_done(sibling, t);
            }
            // Responses flowing to clients never reach a server.
            WrenMsg::StartTxResp { .. }
            | WrenMsg::TxReadResp { .. }
            | WrenMsg::CommitResp { .. } => {
                debug_assert!(false, "client-bound message delivered to a server");
            }
        }
    }

    /// Algorithm 2 lines 1–6: assign a snapshot and transaction id.
    fn on_start(
        &mut self,
        client: ClientId,
        lst_c: Timestamp,
        rst_c: Timestamp,
        now_micros: u64,
        out: &mut Vec<Outgoing<WrenMsg>>,
    ) {
        self.raise_stable(lst_c, rst_c, now_micros);
        let tx = TxId::new(self.id, self.next_seq);
        self.next_seq += 1;
        let lt = self.store.lst();
        // The remote snapshot is forced strictly below the local one so a
        // client-cache hit is always the freshest visible version under
        // last-writer-wins (§IV-B "Start").
        let rt = self.store.rst().min(lt.predecessor());
        self.tx_ctx.insert(
            tx,
            TxCtx {
                client,
                lt,
                rt,
                pending_slices: 0,
                read_acc: Vec::new(),
                pending_prepares: 0,
                max_pt: Timestamp::ZERO,
                cohorts: Vec::new(),
                responded: Vec::new(),
                since: now_micros,
            },
        );
        self.trace.push(TxEvent::TxBegin { tx, lt });
        out.push(Outgoing::to_client(
            client,
            WrenMsg::StartTxResp { tx, lst: lt, rst: rt },
        ));
    }

    /// Algorithm 2 lines 7–16: fan a read out to the owning partitions.
    fn on_read(
        &mut self,
        tx: TxId,
        keys: Vec<Key>,
        now_micros: u64,
        out: &mut Vec<Outgoing<WrenMsg>>,
    ) {
        let Some(ctx) = self.tx_ctx.get(&tx) else {
            // Unknown transaction: with a real transport this is
            // remote-input-dependent (stale or forged id), so drop
            // rather than assert.
            return;
        };
        let (lt, rt, client) = (ctx.lt, ctx.rt, ctx.client);

        // Group keys by owning partition into the reusable scratch
        // buckets (direct indexing; no per-transaction map allocations).
        let mut groups = std::mem::take(&mut self.scratch_reads);
        for k in keys {
            groups[self.partition_of(k).index()].push(k);
        }

        // Serve the coordinator's own slice without a network hop (clients
        // are collocated with their coordinator, §V-A); its bucket is
        // cleared in place so the capacity is reused next transaction.
        let own = self.id.partition.index();
        let local_items = if groups[own].is_empty() {
            Vec::new()
        } else {
            let local_keys = std::mem::take(&mut groups[own]);
            let items = self.read_slice(&local_keys, lt, rt);
            groups[own] = local_keys;
            groups[own].clear();
            items
        };
        let remote_slices = groups.iter().filter(|g| !g.is_empty()).count();

        let ctx = self.tx_ctx.get_mut(&tx).expect("checked above");
        ctx.read_acc = local_items;
        ctx.pending_slices = remote_slices;

        if remote_slices == 0 {
            let items = std::mem::take(&mut ctx.read_acc);
            out.push(Outgoing::to_client(client, WrenMsg::TxReadResp { tx, items }));
            self.scratch_reads = groups;
            return;
        }
        let _ = now_micros;
        for (partition, bucket) in groups.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            // The outgoing message owns its key list, so the bucket's
            // allocation travels with it; only the empty Vec stays.
            let keys = std::mem::take(bucket);
            out.push(Outgoing::to_server(
                self.server(PartitionId(partition as u16)),
                WrenMsg::SliceReq { tx, lt, rt, keys },
            ));
        }
        self.scratch_reads = groups;
    }

    /// Gathers slice responses; replies to the client when complete.
    fn on_slice_resp(
        &mut self,
        tx: TxId,
        items: Vec<(Key, Option<WrenVersion>)>,
        out: &mut Vec<Outgoing<WrenMsg>>,
    ) {
        let Some(ctx) = self.tx_ctx.get_mut(&tx) else {
            // Unknown transaction (stale or forged id over a real
            // transport): drop.
            return;
        };
        ctx.read_acc.extend(items);
        ctx.pending_slices -= 1;
        if ctx.pending_slices == 0 {
            let items = std::mem::take(&mut ctx.read_acc);
            let client = ctx.client;
            out.push(Outgoing::to_client(client, WrenMsg::TxReadResp { tx, items }));
        }
    }

    /// Algorithm 3 lines 1–12: the freshest visible version of each key.
    ///
    /// Never blocks: the snapshot `(lt, rt)` only names versions already
    /// installed on every partition of the DC. Takes `&self` — this is
    /// the read-only half of the handle/read split, the same code an
    /// engine's [`SliceReader`] workers run off-thread.
    fn read_slice(
        &self,
        keys: &[Key],
        lt: Timestamp,
        rt: Timestamp,
    ) -> Vec<(Key, Option<WrenVersion>)> {
        let start = std::time::Instant::now();
        self.read_stats.slices_served.inc();
        self.read_stats.keys_read.add(keys.len() as u64);
        let bound = SnapshotBound::bist(self.id.dc.0, lt, rt);
        let mut items = Vec::with_capacity(keys.len());
        for &k in keys {
            items.push((k, self.store.latest_visible(&k, &bound)));
        }
        self.read_stats
            .read_slice_micros
            .record(start.elapsed().as_micros() as u64);
        items
    }

    /// Algorithm 2 lines 17–28 (first half): fan the prepare phase out.
    fn on_commit_req(
        &mut self,
        tx: TxId,
        hwt: Timestamp,
        writes: Vec<(Key, Value)>,
        now_micros: u64,
        out: &mut Vec<Outgoing<WrenMsg>>,
    ) {
        let Some(ctx) = self.tx_ctx.get(&tx) else {
            // Unknown transaction (stale or forged id over a real
            // transport): drop.
            return;
        };
        let (lt, rt, client) = (ctx.lt, ctx.rt, ctx.client);

        if writes.is_empty() {
            // Read-only transaction: nothing to prepare; tear the context
            // down so GC watermarks can advance. The zero timestamp tells
            // the client its `hwt` is unchanged.
            self.tx_ctx.remove(&tx);
            out.push(Outgoing::to_client(
                client,
                WrenMsg::CommitResp {
                    tx,
                    ct: Timestamp::ZERO,
                },
            ));
            return;
        }

        let ht = lt.max(rt).max(hwt);
        // Group writes by owning partition into the reusable scratch
        // buckets (no per-transaction map allocations).
        let mut groups = std::mem::take(&mut self.scratch_writes);
        for (k, v) in writes {
            groups[self.partition_of(k).index()].push((k, v));
        }
        let own = self.id.partition.index();

        let cohorts: Vec<PartitionId> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(p, _)| PartitionId(p as u16))
            .collect();
        let has_local = !groups[own].is_empty();

        {
            let ctx = self.tx_ctx.get_mut(&tx).expect("checked above");
            ctx.pending_prepares = cohorts.len();
            ctx.cohorts = cohorts;
            ctx.max_pt = Timestamp::ZERO;
            ctx.responded.clear();
            // The abort timer runs from the fan-out, not the start: an
            // interactive transaction may legitimately sit idle between
            // operations, but once the prepares are out the client is
            // blocked and votes either arrive or are gone for good.
            ctx.since = now_micros;
        }

        let mut local_writes = Vec::new();
        for (partition, bucket) in groups.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let writes = std::mem::take(bucket);
            if partition == own {
                local_writes = writes;
            } else {
                out.push(Outgoing::to_server(
                    self.server(PartitionId(partition as u16)),
                    WrenMsg::PrepareReq {
                        tx,
                        lt,
                        rt,
                        ht,
                        writes,
                    },
                ));
            }
        }
        self.scratch_writes = groups;
        if has_local {
            let pt = self.prepare(tx, lt, rt, ht, local_writes, now_micros);
            self.on_prepare_resp(tx, pt, None, now_micros, out);
        }
    }

    /// Algorithm 3 lines 13–19: propose a commit timestamp and append to
    /// the pending list.
    fn prepare(
        &mut self,
        tx: TxId,
        lt: Timestamp,
        rt: Timestamp,
        ht: Timestamp,
        writes: Vec<(Key, Value)>,
        now_micros: u64,
    ) -> Timestamp {
        let phys = self.clock.now_micros(now_micros);
        let pt = self.hlc.tick_at_least(phys, ht);
        self.raise_stable(lt, rt, now_micros);
        // The Prepared record must be durable before the vote escapes
        // (the engine's group-commit point sits between handle() and
        // dispatch), or a recovered cohort could disown a transaction
        // the coordinator already committed.
        if let Some(log) = &mut self.log {
            log.log_prepared(tx, pt, rt, &writes);
        }
        self.prepared.insert(
            tx,
            PreparedTx {
                pt,
                rst: rt,
                writes,
                since: now_micros,
            },
        );
        self.trace.push(TxEvent::Prepared { tx, pt });
        pt
    }

    /// Gathers prepare responses; on the last one, fixes the outcome
    /// (durably, when a log is attached), commits everywhere and answers
    /// the client (Algorithm 2 lines 25–28).
    ///
    /// `cohort` is `Some` for votes arriving over the network and `None`
    /// for the coordinator's own in-line prepare. An unknown transaction
    /// with a named cohort is answered from the decision map: after a
    /// coordinator restart, recovered cohorts re-send their votes, and
    /// the decision record (written before any `Commit` left) — or its
    /// absence — is the outcome.
    fn on_prepare_resp(
        &mut self,
        tx: TxId,
        pt: Timestamp,
        cohort: Option<ServerId>,
        now_micros: u64,
        out: &mut Vec<Outgoing<WrenMsg>>,
    ) {
        let Some(ctx) = self.tx_ctx.get_mut(&tx) else {
            if let Some(cohort) = cohort {
                let ct = self.decided.get(&tx).copied().unwrap_or(Timestamp::ZERO);
                out.push(Outgoing::to_server(cohort, WrenMsg::Commit { tx, ct }));
            }
            return;
        };
        if let Some(cohort) = cohort {
            if ctx.responded.contains(&cohort.partition) {
                // Duplicate vote (cohort-side re-send racing the commit).
                return;
            }
            ctx.responded.push(cohort.partition);
        }
        ctx.max_pt = ctx.max_pt.max(pt);
        ctx.pending_prepares -= 1;
        if ctx.pending_prepares > 0 {
            return;
        }
        let ct = ctx.max_pt;
        let client = ctx.client;
        let cohorts = std::mem::take(&mut ctx.cohorts);
        // Stage 1 of the commit path: fan-out to last vote. Measured
        // from the timer the in-doubt abort also runs on, so no extra
        // clock read.
        self.metrics
            .commit_prepare_micros
            .record(now_micros.saturating_sub(ctx.since));
        self.tx_ctx.remove(&tx);
        // Fix the outcome before any Commit message leaves, so a cohort
        // that asks again always gets the same answer.
        self.decided.insert(tx, ct);
        self.trace.push(TxEvent::Decided { tx, ct });
        if let Some(log) = &mut self.log {
            log.append(&WalOp::Decided { tx, ct });
        }
        for partition in cohorts {
            if partition == self.id.partition {
                self.commit(tx, ct, now_micros);
            } else {
                out.push(Outgoing::to_server(
                    self.server(partition),
                    WrenMsg::Commit { tx, ct },
                ));
            }
        }
        self.stats.txs_coordinated += 1;
        out.push(Outgoing::to_client(client, WrenMsg::CommitResp { tx, ct }));
    }

    /// Algorithm 3 lines 20–24: move a transaction from the pending to the
    /// commit list — or drop it when `ct` is zero (the 2PC abort verdict a
    /// restarted coordinator gives for transactions it never decided).
    fn commit(&mut self, tx: TxId, ct: Timestamp, now_micros: u64) {
        if ct.is_zero() {
            // Abort: release the prepared entry so it stops pinning this
            // partition's ub (and with it the DC's LST) forever.
            if self.prepared.remove(&tx).is_some() {
                if let Some(log) = &mut self.log {
                    log.append(&WalOp::Commit {
                        tx,
                        ct: Timestamp::ZERO,
                    });
                }
            }
            return;
        }
        let phys = self.clock.now_micros(now_micros);
        self.hlc.merge(phys, ct);
        let Some(prepared) = self.prepared.remove(&tx) else {
            // Unknown/unprepared transaction (stale or forged id over a
            // real transport, or a duplicate Commit after a vote
            // re-send): drop.
            return;
        };
        if let Some(log) = &mut self.log {
            log.append(&WalOp::Commit { tx, ct });
        }
        // Stage 2: vote sent (or re-sent) to verdict applied here.
        self.metrics
            .commit_decide_micros
            .record(now_micros.saturating_sub(prepared.since));
        self.committed.insert(
            (ct, tx),
            CommittedTx {
                rst: prepared.rst,
                writes: prepared.writes,
                committed_at: now_micros,
            },
        );
        self.stats.txs_cohort_committed += 1;
    }

    /// Applies a replication batch from the sibling replica in `sibling`'s
    /// DC (Algorithm 4 lines 22–26).
    ///
    /// The whole batch shares one commit timestamp, so it is applied with
    /// the store's batched splice ([`ShardedStore::apply_batch`]): the
    /// writes are flattened into a reusable scratch buffer and each key's
    /// run pays a single chain search instead of one per version.
    fn on_replicate(&mut self, sibling: ServerId, batch: ReplicateBatch, now_micros: u64) {
        let src = sibling.dc;
        let ct = batch.ct;
        // Replication lag: age of the batch's commit timestamp at apply.
        // Saturating — sibling clocks may run ahead of ours.
        self.metrics
            .replication_lag_micros
            .record(now_micros.saturating_sub(ct.physical_micros()));
        let catching_up = self.awaiting[src.index()];
        if let Some(log) = &mut self.log {
            log.log_remote_batch(src.0, !catching_up, ct, &batch.txs);
        }
        if catching_up {
            // Catch-up re-delivery: versions may already be present
            // (applied and logged before the crash), so the idempotent
            // insert dedups on the LWW order key. The vector entry for
            // `src` stays frozen — these batches sit *below* the
            // pre-crash `VV[src]`, which only advances again at
            // CatchUpDone.
            let mut applied = 0u64;
            for rep in batch.txs {
                for (k, v) in rep.writes {
                    let version = WrenVersion {
                        value: v,
                        ut: ct,
                        rdt: rep.rst,
                        tx: rep.tx,
                        sr: src,
                    };
                    if self.store.insert_if_new(k, version) {
                        applied += 1;
                    }
                }
            }
            self.stats.remote_versions_applied += applied;
            return;
        }
        let mut items = std::mem::take(&mut self.scratch_apply);
        debug_assert!(items.is_empty());
        for rep in batch.txs {
            for (k, v) in rep.writes {
                items.push((
                    k,
                    WrenVersion {
                        value: v,
                        ut: ct,
                        rdt: rep.rst,
                        tx: rep.tx,
                        sr: src,
                    },
                ));
            }
            self.vis.register_remote(ct);
        }
        let applied = self.store.apply_batch(&mut items);
        self.stats.remote_versions_applied += applied as u64;
        self.scratch_apply = items;
        self.vv.raise(src.index(), ct);
    }

    /// Algorithm 4 lines 5–21 (Δ_R): apply committed transactions in
    /// commit-timestamp order, advance the version clock and ship
    /// replication batches (or a heartbeat when idle).
    ///
    /// Returns the number of versions applied (drivers use it to charge
    /// CPU time proportional to the work done).
    pub fn on_replication_tick(
        &mut self,
        now_micros: u64,
        out: &mut Vec<Outgoing<WrenMsg>>,
    ) -> usize {
        let phys = self.clock.now_micros(now_micros);
        // Absorb physical time so that ub is a genuine lower bound on every
        // future proposal (future pts are > HLC ≥ ub; see struct docs).
        self.hlc.merge(phys, Timestamp::ZERO);

        let ub = if self.prepared.is_empty() {
            self.hlc.current()
        } else {
            self.prepared
                .values()
                .map(|p| p.pt)
                .min()
                .expect("non-empty")
                .predecessor()
        };

        if ub <= self.version_clock() {
            return 0;
        }

        let mut applied = 0usize;
        if self.committed.is_empty() {
            self.vv.set(self.dc_index(), ub);
            for &sibling in &self.siblings {
                out.push(Outgoing::to_server(sibling, WrenMsg::Heartbeat { t: ub }));
            }
            self.stats.heartbeats_sent += self.siblings.len() as u64;
            return 0;
        }

        // Split off the transactions with ct ≤ ub, in ascending ct order.
        let keep = self.committed.split_off(&(ub.successor(), TxId::from_raw(0)));
        let ready = std::mem::replace(&mut self.committed, keep);

        let mut batch: Vec<RepTx> = Vec::new();
        let mut batch_ct = Timestamp::ZERO;
        let mut txs_applied = 0u64;
        for ((ct, tx), ctx) in ready {
            if ct != batch_ct && !batch.is_empty() {
                self.ship_batch(batch_ct, std::mem::take(&mut batch), out);
            }
            batch_ct = ct;
            // Stage 3: commit verdict to local install (skipped for
            // entries re-built by recovery, which have no verdict time).
            if ctx.committed_at != 0 {
                self.metrics
                    .commit_apply_micros
                    .record(now_micros.saturating_sub(ctx.committed_at));
            }
            txs_applied += 1;
            for (k, v) in &ctx.writes {
                self.store.insert(
                    *k,
                    WrenVersion {
                        value: v.clone(),
                        ut: ct,
                        rdt: ctx.rst,
                        tx,
                        sr: self.id.dc,
                    },
                );
                applied += 1;
                self.stats.local_versions_applied += 1;
            }
            self.vis.register_local(ct);
            batch.push(RepTx {
                tx,
                rst: ctx.rst,
                writes: ctx.writes,
            });
        }
        if !batch.is_empty() {
            self.ship_batch(batch_ct, batch, out);
        }
        self.vv.set(self.dc_index(), ub);
        self.trace.push(TxEvent::Applied { ub, txs: txs_applied });
        // One Applied record per data-bearing tick: replay re-installs
        // the covered transactions and re-raises the version clock. The
        // heartbeat path above intentionally logs nothing — its ub
        // carries no data, and the clock re-advances after recovery.
        if let Some(log) = &mut self.log {
            log.append(&WalOp::Applied { ub });
        }
        applied
    }

    fn ship_batch(&mut self, ct: Timestamp, mut txs: Vec<RepTx>, out: &mut Vec<Outgoing<WrenMsg>>) {
        self.metrics.replication_batch_txs.record(txs.len() as u64);
        // The last sibling takes ownership of the batch; only the others
        // pay for a deep clone of the transaction list.
        let n = self.siblings.len();
        for (i, &sibling) in self.siblings.iter().enumerate() {
            let batch_txs = if i + 1 == n {
                std::mem::take(&mut txs)
            } else {
                txs.clone()
            };
            out.push(Outgoing::to_server(
                sibling,
                WrenMsg::Replicate {
                    batch: ReplicateBatch { ct, txs: batch_txs },
                },
            ));
        }
        self.stats.replicate_batches_sent += n as u64;
    }

    /// Algorithm 4 lines 29–31 (Δ_G): exchange this partition's BiST
    /// contribution — two scalar timestamps — and refresh LST/RST.
    ///
    /// With [`WrenConfig::gossip_fanout`] = 0, every partition broadcasts
    /// to every other. Otherwise contributions aggregate up a k-ary tree
    /// and the root's result cascades back down, reducing the per-round
    /// message count from N(N−1) to 2(N−1).
    pub fn on_gossip_tick(&mut self, now_micros: u64, out: &mut Vec<Outgoing<WrenMsg>>) {
        self.durability_tick(now_micros, out);
        let local = self.version_clock();
        let remote = self.vv.min_except(self.dc_index());
        self.gossip_contrib[self.id.partition.index()] = (local, remote);

        if self.cfg.gossip_fanout == 0 {
            for &peer in &self.peers {
                out.push(Outgoing::to_server(
                    peer,
                    WrenMsg::StableGossip { local, remote },
                ));
            }
            self.recompute_stable(now_micros);
            return;
        }

        // Tree mode: fold own + children subtree minima.
        let mut sub_local = local;
        let mut sub_remote = remote;
        for child in &self.children {
            let (cl, cr) = self.gossip_contrib[child.partition.index()];
            sub_local = sub_local.min(cl);
            sub_remote = sub_remote.min(cr);
        }
        match self.tree_parent() {
            Some(parent) => {
                out.push(Outgoing::to_server(
                    parent,
                    WrenMsg::GossipUp {
                        local: sub_local,
                        remote: sub_remote,
                    },
                ));
            }
            None => {
                // Root: the subtree minimum covers the whole DC.
                self.raise_stable(sub_local, sub_remote, now_micros);
                let (lst, rst) = self.store.stable();
                for &child in &self.children {
                    out.push(Outgoing::to_server(child, WrenMsg::GossipDown { lst, rst }));
                }
            }
        }
    }

    /// This partition's parent in the k-ary stabilization tree (root =
    /// partition 0), or `None` at the root / in broadcast mode.
    fn tree_parent(&self) -> Option<ServerId> {
        let f = self.cfg.gossip_fanout;
        let i = self.id.partition.0;
        if f == 0 || i == 0 {
            return None;
        }
        Some(self.server(wren_protocol::PartitionId((i - 1) / f)))
    }

    fn recompute_stable(&mut self, now_micros: u64) {
        let lst = self
            .gossip_contrib
            .iter()
            .map(|(l, _)| *l)
            .min()
            .unwrap_or(Timestamp::ZERO);
        let rst = self
            .gossip_contrib
            .iter()
            .map(|(_, r)| *r)
            .min()
            .unwrap_or(Timestamp::ZERO);
        self.raise_stable(lst, rst, now_micros);
    }

    /// GC tick: broadcast the oldest snapshot visible to a transaction
    /// running here, then prune version chains below the DC-wide minimum
    /// (§IV-B "Garbage collection").
    ///
    /// Returns the number of versions collected.
    pub fn on_gc_tick(&mut self, _now_micros: u64, out: &mut Vec<Outgoing<WrenMsg>>) -> usize {
        // Oldest active snapshot, or the current visible snapshot if idle.
        let (lst, rst) = self.store.stable();
        let (mut oldest_lt, mut oldest_rt) = (lst, rst.min(lst.predecessor()));
        for ctx in self.tx_ctx.values() {
            oldest_lt = oldest_lt.min(ctx.lt);
            oldest_rt = oldest_rt.min(ctx.rt);
        }
        self.gc_contrib[self.id.partition.index()] = (oldest_lt, oldest_rt);
        for &peer in &self.peers {
            out.push(Outgoing::to_server(
                peer,
                WrenMsg::GcGossip {
                    oldest_lt,
                    oldest_rt,
                },
            ));
        }

        let w_lt = self
            .gc_contrib
            .iter()
            .map(|(l, _)| *l)
            .min()
            .unwrap_or(Timestamp::ZERO);
        let w_rt = self
            .gc_contrib
            .iter()
            .map(|(_, r)| *r)
            .min()
            .unwrap_or(Timestamp::ZERO);
        if w_lt.is_zero() && w_rt.is_zero() {
            return 0;
        }
        let oldest = SnapshotBound::bist(self.id.dc.0, w_lt, w_rt);
        let removed = self.store.collect(&oldest);
        self.stats.gc_versions_removed += removed as u64;
        removed
    }

    // ------------------------------------------------------------------
    // Durability: recovery, checkpoints and crash-resolution plumbing.
    // See the `durability` module docs for the WAL → checkpoint →
    // recovery layering; the engine in `wren-rt` drives the commit
    // points and checkpoint ticks.
    // ------------------------------------------------------------------

    /// Rebuilds the partition from its durability directory and attaches
    /// the log: loads the newest valid checkpoint, replays every WAL
    /// record after it, resolves transactions this server coordinated
    /// whose outcome is in doubt, and restores the causal cut — all
    /// before the server accepts traffic. An empty or missing directory
    /// yields a fresh durable server.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or a checkpoint whose CRC validates
    /// but whose typed payload no longer decodes.
    pub fn recover(
        id: ServerId,
        cfg: WrenConfig,
        clock: SkewedClock,
        dir: &Path,
        policy: FsyncPolicy,
    ) -> std::io::Result<Self> {
        let boot = DurableLog::open(dir, policy)?;
        let mut s = WrenServer::new(id, cfg, clock);
        if let Some(payload) = &boot.checkpoint {
            s.apply_checkpoint(payload).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("checkpoint: {e}"))
            })?;
        }
        let mut max_seen = s.hlc.current();
        let mut max_own_seq = s.next_seq;
        for op in &boot.ops {
            s.replay(op, &mut max_seen, &mut max_own_seq);
        }
        // Resolve transactions this server coordinated that are still
        // prepared locally. The decision record was durable before any
        // Commit left, so: a decision says commit; no decision says the
        // decision point was never reached — abort, releasing the pin
        // on ub. Either way the resolution is deterministic, so it need
        // not be re-logged (a second crash replays to the same point).
        let own_prepared: Vec<TxId> = s
            .prepared
            .keys()
            .filter(|tx| tx.dc() == id.dc && tx.partition() == id.partition)
            .copied()
            .collect();
        for tx in own_prepared {
            match s.decided.get(&tx).copied() {
                Some(ct) => {
                    s.replay(&WalOp::Commit { tx, ct }, &mut max_seen, &mut max_own_seq);
                }
                None => {
                    s.prepared.remove(&tx);
                }
            }
        }
        // Clock floor: every pt this server issued is ≤ max_seen under
        // `FsyncPolicy::Always` (the record is durable before the vote
        // escapes); the one-second jump also absorbs the EveryN/Off
        // loss window so a reissued proposal cannot order below a
        // pre-crash one that escaped unlogged.
        s.hlc = HybridClock::starting_at(Timestamp::from_parts(
            max_seen.physical_micros() + 1_000_000,
            0,
        ));
        // Never reuse a transaction id: coordinator contexts are
        // volatile, so ids above the highest logged one may have been
        // handed out and lost — the margin jumps past them.
        s.next_seq = max_own_seq + (1 << 20);
        s.last_logged_stable = s.store.stable();
        let mut log = boot.log;
        log.instrument(
            s.metrics.wal_fsync_micros.clone(),
            s.metrics.wal_append_bytes.clone(),
            s.metrics.wal_group_commit_size.clone(),
        );
        s.log = Some(log);
        Ok(s)
    }

    /// Applies one WAL record to the recovering state. `max_seen`
    /// accumulates every timestamp this server may have issued;
    /// `max_own_seq` the highest own-coordinated sequence plus one.
    fn replay(&mut self, op: &WalOp, max_seen: &mut Timestamp, max_own_seq: &mut u64) {
        match op {
            WalOp::Prepared { tx, pt, rst, writes } => {
                *max_seen = (*max_seen).max(*pt);
                self.note_own_seq(*tx, max_own_seq);
                self.prepared.insert(
                    *tx,
                    PreparedTx {
                        pt: *pt,
                        rst: *rst,
                        writes: writes.clone(),
                        since: 0,
                    },
                );
            }
            WalOp::Decided { tx, ct } => {
                *max_seen = (*max_seen).max(*ct);
                self.note_own_seq(*tx, max_own_seq);
                self.decided.insert(*tx, *ct);
            }
            WalOp::Commit { tx, ct } => {
                *max_seen = (*max_seen).max(*ct);
                self.note_own_seq(*tx, max_own_seq);
                if ct.is_zero() {
                    self.prepared.remove(tx);
                } else if let Some(p) = self.prepared.remove(tx) {
                    self.committed.insert(
                        (*ct, *tx),
                        CommittedTx {
                            rst: p.rst,
                            writes: p.writes,
                            committed_at: 0,
                        },
                    );
                }
            }
            WalOp::Applied { ub } => {
                *max_seen = (*max_seen).max(*ub);
                let keep = self.committed.split_off(&(ub.successor(), TxId::from_raw(0)));
                let ready = std::mem::replace(&mut self.committed, keep);
                for ((ct, tx), ctx) in ready {
                    for (k, v) in ctx.writes {
                        self.store.insert_if_new(
                            k,
                            WrenVersion {
                                value: v,
                                ut: ct,
                                rdt: ctx.rst,
                                tx,
                                sr: self.id.dc,
                            },
                        );
                    }
                }
                self.vv.raise(self.dc_index(), *ub);
            }
            WalOp::RemoteBatch { src, raise, ct, txs } => {
                for rep in txs {
                    for (k, v) in &rep.writes {
                        self.store.insert_if_new(
                            *k,
                            WrenVersion {
                                value: v.clone(),
                                ut: *ct,
                                rdt: rep.rst,
                                tx: rep.tx,
                                sr: DcId(*src),
                            },
                        );
                    }
                }
                if *raise {
                    self.vv.raise(DcId(*src).index(), *ct);
                }
            }
            WalOp::Stable { lst, rst } => {
                self.store.publish_stable(*lst, *rst);
            }
            WalOp::CatchUpDone { src, t } => {
                self.vv.raise(DcId(*src).index(), *t);
            }
        }
    }

    fn note_own_seq(&self, tx: TxId, max_own_seq: &mut u64) {
        if tx.dc() == self.id.dc && tx.partition() == self.id.partition {
            *max_own_seq = (*max_own_seq).max(tx.seq() + 1);
        }
    }

    /// Serializes the partition's complete durable state: clocks, vector,
    /// stable cut, 2PC lists, decision map, and the store dumped stripe
    /// by stripe (each stripe under its read lock, so concurrent read
    /// workers stall on at most one stripe at a time).
    fn encode_checkpoint(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(1024 + self.store.stats().versions * 48);
        e.put_vv(&self.vv);
        e.put_ts(self.hlc.current());
        let (lst, rst) = self.store.stable();
        e.put_ts(lst);
        e.put_ts(rst);
        e.put_u64(self.next_seq);
        e.put_u32(self.prepared.len() as u32);
        for (tx, p) in &self.prepared {
            e.put_tx(*tx);
            e.put_ts(p.pt);
            e.put_ts(p.rst);
            put_writes(&mut e, &p.writes);
        }
        e.put_u32(self.committed.len() as u32);
        for ((ct, tx), c) in &self.committed {
            e.put_ts(*ct);
            e.put_tx(*tx);
            e.put_ts(c.rst);
            put_writes(&mut e, &c.writes);
        }
        e.put_u32(self.decided.len() as u32);
        for (tx, ct) in &self.decided {
            e.put_tx(*tx);
            e.put_ts(*ct);
        }
        e.put_u32(self.store.n_stripes() as u32);
        for stripe in 0..self.store.n_stripes() {
            self.store.with_stripe(stripe, |s| {
                e.put_u32(s.stats().versions as u32);
                for (key, chain) in s.iter() {
                    for v in chain.iter() {
                        e.put_key(*key);
                        e.put_value(&v.value);
                        e.put_ts(v.ut);
                        e.put_ts(v.rdt);
                        e.put_tx(v.tx);
                        e.put_dc(v.sr);
                    }
                }
            });
        }
        e.finish().to_vec()
    }

    /// Restores [`encode_checkpoint`](Self::encode_checkpoint) state onto
    /// a fresh server (recovery only).
    fn apply_checkpoint(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Dec::new(bytes);
        self.vv = d.get_vv()?;
        self.hlc = HybridClock::starting_at(d.get_ts()?);
        let lst = d.get_ts()?;
        let rst = d.get_ts()?;
        self.store.publish_stable(lst, rst);
        self.next_seq = d.get_u64()?;
        for _ in 0..d.get_u32()? {
            let tx = d.get_tx()?;
            let pt = d.get_ts()?;
            let p_rst = d.get_ts()?;
            let writes = get_writes(&mut d)?;
            self.prepared.insert(
                tx,
                PreparedTx {
                    pt,
                    rst: p_rst,
                    writes,
                    since: 0,
                },
            );
        }
        for _ in 0..d.get_u32()? {
            let ct = d.get_ts()?;
            let tx = d.get_tx()?;
            let c_rst = d.get_ts()?;
            let writes = get_writes(&mut d)?;
            self.committed
                .insert((ct, tx), CommittedTx { rst: c_rst, writes, committed_at: 0 });
        }
        for _ in 0..d.get_u32()? {
            let tx = d.get_tx()?;
            let ct = d.get_ts()?;
            self.decided.insert(tx, ct);
        }
        for _ in 0..d.get_u32()? {
            for _ in 0..d.get_u32()? {
                let key = d.get_key()?;
                let value = d.get_value()?;
                let ut = d.get_ts()?;
                let rdt = d.get_ts()?;
                let tx = d.get_tx()?;
                let sr = d.get_dc()?;
                self.store.insert_if_new(key, WrenVersion { value, ut, rdt, tx, sr });
            }
        }
        d.expect_end()?;
        Ok(())
    }

    /// Snapshots the partition into a new checkpoint generation and
    /// rotates the WAL (no-op without a log). The previous generation is
    /// retained as the corruption fallback.
    pub fn write_checkpoint(&mut self) -> std::io::Result<()> {
        if self.log.is_none() {
            return Ok(());
        }
        let start = std::time::Instant::now();
        let payload = self.encode_checkpoint();
        self.log.as_mut().expect("checked").rotate(&payload)?;
        self.stats.checkpoints_written += 1;
        self.metrics
            .checkpoint_micros
            .record(start.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Marks a group-commit point: buffered WAL records become durable
    /// per the fsync policy (no-op without a log). The engine calls this
    /// after a burst of handled messages, before dispatching the outputs
    /// those records justify — so nothing ACKed or shipped can outrun
    /// the log.
    pub fn log_commit_point(&mut self) -> std::io::Result<()> {
        match &mut self.log {
            Some(l) => l.commit_point(),
            None => Ok(()),
        }
    }

    /// Flushes and fsyncs the WAL regardless of policy (graceful stop).
    pub fn seal_log(&mut self) -> std::io::Result<()> {
        match &mut self.log {
            Some(l) => l.seal(),
            None => Ok(()),
        }
    }

    /// When the WAL's open group-commit window must close — `None`
    /// unless the policy is `FsyncPolicy::Window` with unsynced commit
    /// points pending. While `Some`, the engine holds the responses
    /// those commit points justify and joins the deadline into its tick
    /// schedule.
    pub fn log_sync_deadline(&self) -> Option<std::time::Instant> {
        self.log.as_ref().and_then(|l| l.sync_deadline())
    }

    /// Fsyncs the WAL now, closing any open group-commit window (no-op
    /// without a log).
    pub fn sync_log(&mut self) -> std::io::Result<()> {
        match &mut self.log {
            Some(l) => l.sync_now(),
            None => Ok(()),
        }
    }

    /// Whether a durability log is attached.
    pub fn is_durable(&self) -> bool {
        self.log.is_some()
    }

    /// Begins post-restart catch-up: asks every sibling to re-ship its
    /// local transactions above our recovered version-vector entry, and
    /// freezes that entry (heartbeats included) until the sibling's
    /// `CatchUpDone` closes the window. The request is re-sent from
    /// [`durability_tick`] while the window stays open, so a sibling
    /// that is itself down (or reachable only through a parked link)
    /// still gets asked once it returns.
    pub fn begin_rejoin(&mut self, now_micros: u64, out: &mut Vec<Outgoing<WrenMsg>>) {
        self.trace.push(TxEvent::Rejoin { server: self.id });
        for i in 0..self.siblings.len() {
            let sib = self.siblings[i];
            self.open_catch_up_window(sib, now_micros, out);
        }
    }

    /// Reacts to a broken live TCP link carrying traffic *from* `peer`:
    /// frames in flight on it — replication batches and heartbeats from
    /// a sibling — died with the connection, and silently resuming on a
    /// fresh connection would let a later heartbeat vouch for versions
    /// this server never received. For a sibling replica the lane is
    /// therefore frozen and re-asked exactly as a restart does
    /// ([`begin_rejoin`](Self::begin_rejoin)); links from same-DC peers
    /// need no reaction — 2PC votes are re-sent periodically, slices
    /// are retried by the client, and gossip/GC are refreshed every
    /// tick, so nothing on them is load-bearing once lost.
    pub fn on_peer_link_lost(
        &mut self,
        peer: ServerId,
        now_micros: u64,
        out: &mut Vec<Outgoing<WrenMsg>>,
    ) {
        if peer.dc == self.id.dc || peer.partition != self.id.partition {
            return;
        }
        self.trace.push(TxEvent::LinkLost { peer });
        self.open_catch_up_window(peer, now_micros, out);
    }

    /// Freezes `sibling`'s replication lane and asks it to re-ship
    /// everything above our version-vector entry.
    fn open_catch_up_window(
        &mut self,
        sibling: ServerId,
        now_micros: u64,
        out: &mut Vec<Outgoing<WrenMsg>>,
    ) {
        let i = sibling.dc.index();
        self.awaiting[i] = true;
        self.catchup_sent[i] = now_micros;
        out.push(Outgoing::to_server(
            sibling,
            WrenMsg::CatchUpReq {
                from: self.vv.get(i),
            },
        ));
    }

    /// Serves a restarted sibling's catch-up: re-ship every local-origin
    /// version with `ut > horizon` as ordinary `Replicate` batches (one
    /// per distinct commit timestamp, chunked), closed by a
    /// `CatchUpDone` carrying this server's version clock. Every such
    /// version has `ut ≤ VV[m]` — only applied transactions reach the
    /// store — so the closing clock covers exactly what was re-sent;
    /// committed-but-unapplied transactions have `ct > VV[m]` and flow
    /// through normal replication afterwards.
    fn on_catch_up_req(
        &mut self,
        requester: ServerId,
        horizon: Timestamp,
        out: &mut Vec<Outgoing<WrenMsg>>,
    ) {
        let own_dc = self.id.dc;
        let mut by_tx: BTreeMap<(Timestamp, TxId), RepTx> = BTreeMap::new();
        for stripe in 0..self.store.n_stripes() {
            self.store.with_stripe(stripe, |s| {
                for (key, chain) in s.iter() {
                    for v in chain.iter() {
                        if v.sr == own_dc && v.ut > horizon {
                            by_tx
                                .entry((v.ut, v.tx))
                                .or_insert_with(|| RepTx {
                                    tx: v.tx,
                                    rst: v.rdt,
                                    writes: Vec::new(),
                                })
                                .writes
                                .push((*key, v.value.clone()));
                        }
                    }
                }
            });
        }
        const CATCH_UP_CHUNK: usize = 1024;
        let mut batch: Vec<RepTx> = Vec::new();
        let mut batch_ct = Timestamp::ZERO;
        for ((ct, _), rep) in by_tx {
            if (ct != batch_ct || batch.len() >= CATCH_UP_CHUNK) && !batch.is_empty() {
                out.push(Outgoing::to_server(
                    requester,
                    WrenMsg::Replicate {
                        batch: ReplicateBatch {
                            ct: batch_ct,
                            txs: std::mem::take(&mut batch),
                        },
                    },
                ));
            }
            batch_ct = ct;
            batch.push(rep);
        }
        if !batch.is_empty() {
            out.push(Outgoing::to_server(
                requester,
                WrenMsg::Replicate {
                    batch: ReplicateBatch {
                        ct: batch_ct,
                        txs: batch,
                    },
                },
            ));
        }
        out.push(Outgoing::to_server(
            requester,
            WrenMsg::CatchUpDone {
                t: self.version_clock(),
            },
        ));
    }

    /// Closes a catch-up window: everything the sibling vouches for (its
    /// version clock at scan time) is applied, so the frozen vector
    /// entry may advance again.
    fn on_catch_up_done(&mut self, sibling: ServerId, t: Timestamp) {
        let src = sibling.dc;
        if self.awaiting[src.index()] {
            self.awaiting[src.index()] = false;
            self.trace.push(TxEvent::LinkHealed { peer: sibling });
            if let Some(log) = &mut self.log {
                log.append(&WalOp::CatchUpDone { src: src.0, t });
            }
        }
        self.vv.raise(src.index(), t);
    }

    /// Overrides the coordinator's in-doubt abort timeout (default 3 s):
    /// how long a 2PC fan-out may wait on missing prepare votes before
    /// the coordinator aborts the transaction. Chaos/failover tests
    /// shrink it so a cohort crash resolves within the test's patience;
    /// production-shaped drivers leave the default.
    pub fn set_tx_abort_timeout(&mut self, micros: u64) {
        self.tx_abort_timeout_micros = micros;
    }

    /// Crash-resolution periodic work, run at every gossip tick: prune
    /// the decision map below the LST, re-ask open catch-up windows,
    /// re-send votes for transactions prepared but undecided for too
    /// long (their coordinator — or the vote itself — may have died),
    /// abort 2PC rounds whose missing votes are past the in-doubt
    /// timeout, and log stable advances (durable mode).
    ///
    /// Everything except the stable logging runs with or without a log
    /// attached: on a TCP fabric, links break and lose messages whether
    /// or not the partition is durable.
    fn durability_tick(&mut self, now_micros: u64, out: &mut Vec<Outgoing<WrenMsg>>) {
        let lst = self.store.lst();
        self.decided.retain(|_, ct| *ct > lst);

        // Visibility lag (freshness): how far the stable cut trails true
        // time. Sampled once per advance — not per raise — so the gossip
        // hot path stays clean and the histogram measures distinct cuts.
        let stable = self.store.stable();
        if stable != self.last_traced_stable {
            self.last_traced_stable = stable;
            let (lst, rst) = stable;
            if !lst.is_zero() {
                let lag = now_micros.saturating_sub(lst.physical_micros());
                self.metrics.visibility_lag_local_micros.record(lag);
                self.metrics.visibility_lag_local_gauge.set(lag);
            }
            if !rst.is_zero() {
                let lag = now_micros.saturating_sub(rst.physical_micros());
                self.metrics.visibility_lag_remote_micros.record(lag);
                self.metrics.visibility_lag_remote_gauge.set(lag);
            }
            self.trace.push(TxEvent::Stable { lst, rst });
        }

        const RESEND_AFTER_MICROS: u64 = 100_000;

        // Re-ask open catch-up windows: the CatchUpReq may have been
        // sent at a peer that was down (or through a link that severed
        // again), and the frozen vector entry only unfreezes when some
        // request gets through to a CatchUpDone.
        for i in 0..self.awaiting.len() {
            if self.awaiting[i]
                && now_micros.saturating_sub(self.catchup_sent[i]) > RESEND_AFTER_MICROS
            {
                self.catchup_sent[i] = now_micros;
                out.push(Outgoing::to_server(
                    ServerId {
                        dc: DcId(i as u8),
                        partition: self.id.partition,
                    },
                    WrenMsg::CatchUpReq {
                        from: self.vv.get(i),
                    },
                ));
            }
        }

        // Cohort-side vote re-send: a prepared transaction whose commit
        // verdict is overdue re-offers its vote; the coordinator (or
        // its decision map) answers with the fixed outcome.
        let own = self.id;
        let mut resend: Vec<(TxId, Timestamp)> = Vec::new();
        for (tx, p) in self.prepared.iter_mut() {
            let coordinated_here = tx.dc() == own.dc && tx.partition() == own.partition;
            if !coordinated_here && now_micros.saturating_sub(p.since) > RESEND_AFTER_MICROS {
                p.since = now_micros;
                resend.push((*tx, p.pt));
            }
        }
        for (tx, pt) in resend {
            out.push(Outgoing::to_server(
                ServerId {
                    dc: tx.dc(),
                    partition: tx.partition(),
                },
                WrenMsg::PrepareResp { tx, pt },
            ));
        }

        // Coordinator-side in-doubt abort: a fan-out still missing votes
        // past the timeout means a cohort crashed before durably
        // preparing (its restart cannot re-vote what it never logged).
        // Abort: remove the context *without* a decision record —
        // absence is the abort verdict a re-asking cohort reads — and
        // release every prepared cohort so the DC's LST unpins. The
        // client is told explicitly (zero `ct` on a write transaction is
        // the abort verdict), so its stall is `tx_abort_timeout`, not
        // the session timeout. The outcome was fixed the moment the
        // context died — the reply only shortens how long the client
        // waits to learn it.
        let timeout = self.tx_abort_timeout_micros;
        let doomed: Vec<TxId> = self
            .tx_ctx
            .iter()
            .filter(|(_, c)| {
                c.pending_prepares > 0 && now_micros.saturating_sub(c.since) > timeout
            })
            .map(|(tx, _)| *tx)
            .collect();
        for tx in doomed {
            let ctx = self.tx_ctx.remove(&tx).expect("collected above");
            for partition in ctx.cohorts {
                if partition == self.id.partition {
                    self.commit(tx, Timestamp::ZERO, now_micros);
                } else {
                    out.push(Outgoing::to_server(
                        self.server(partition),
                        WrenMsg::Commit {
                            tx,
                            ct: Timestamp::ZERO,
                        },
                    ));
                }
            }
            self.metrics.tx_aborts_indoubt.inc();
            self.trace.push(TxEvent::AbortedInDoubt { tx });
            out.push(Outgoing::to_client(
                ctx.client,
                WrenMsg::CommitResp {
                    tx,
                    ct: Timestamp::ZERO,
                },
            ));
        }

        if self.log.is_none() {
            return;
        }
        let stable = self.store.stable();
        if stable != self.last_logged_stable {
            self.last_logged_stable = stable;
            if let Some(log) = &mut self.log {
                log.append(&WalOp::Stable {
                    lst: stable.0,
                    rst: stable.1,
                });
            }
        }
    }
}
