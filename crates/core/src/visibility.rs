use std::collections::BTreeMap;
use wren_clock::Timestamp;

/// Caps the number of retained samples so long experiments stay bounded.
const MAX_SAMPLES: usize = 200_000;

/// Records update-visibility latencies at one partition (Fig. 7b).
///
/// The visibility latency of an update `X` in a DC is the difference
/// between the wall-clock instant `X` becomes *visible* there (included in
/// the snapshots handed to transactions) and the wall-clock instant `X`
/// committed in its origin DC (§V-G).
///
/// * A **local** update becomes visible when the partition's LST reaches
///   its commit timestamp — Wren's "slightly in the past" snapshot delay.
/// * A **remote** update becomes visible when the RST reaches its commit
///   timestamp (all of its dependencies are then in the DC).
///
/// The commit instant is approximated by the physical component of the
/// commit timestamp, which an HLC keeps within clock-skew distance of true
/// commit time (the same error NTP introduces in the paper's own
/// measurement methodology).
#[derive(Debug, Clone)]
pub struct VisibilitySampler {
    /// Record every k-th update; 0 disables sampling entirely.
    sample_every: u64,
    seen_local: u64,
    seen_remote: u64,
    /// Commit timestamp → commit instants (physical µs) awaiting LST.
    pending_local: BTreeMap<Timestamp, Vec<u64>>,
    /// Commit timestamp → commit instants awaiting RST.
    pending_remote: BTreeMap<Timestamp, Vec<u64>>,
    local: Vec<u64>,
    remote: Vec<u64>,
}

impl VisibilitySampler {
    /// Creates a sampler recording every `sample_every`-th update
    /// (0 disables).
    pub fn new(sample_every: u64) -> Self {
        VisibilitySampler {
            sample_every,
            seen_local: 0,
            seen_remote: 0,
            pending_local: BTreeMap::new(),
            pending_remote: BTreeMap::new(),
            local: Vec::new(),
            remote: Vec::new(),
        }
    }

    /// Whether sampling is active.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// Notes a locally-committed update with commit timestamp `ct`.
    pub fn register_local(&mut self, ct: Timestamp) {
        if !self.enabled() {
            return;
        }
        self.seen_local += 1;
        if self.seen_local.is_multiple_of(self.sample_every) && self.local.len() < MAX_SAMPLES {
            self.pending_local
                .entry(ct)
                .or_default()
                .push(ct.physical_micros());
        }
    }

    /// Notes a replicated (remote-origin) update with commit timestamp
    /// `ct`.
    pub fn register_remote(&mut self, ct: Timestamp) {
        if !self.enabled() {
            return;
        }
        self.seen_remote += 1;
        if self.seen_remote.is_multiple_of(self.sample_every) && self.remote.len() < MAX_SAMPLES {
            self.pending_remote
                .entry(ct)
                .or_default()
                .push(ct.physical_micros());
        }
    }

    /// Called whenever the partition's stable times advance: drains every
    /// pending sample now covered by `lst`/`rst`, stamping visibility at
    /// `now_micros`.
    pub fn advance(&mut self, lst: Timestamp, rst: Timestamp, now_micros: u64) {
        if !self.enabled() {
            return;
        }
        Self::drain(&mut self.pending_local, lst, now_micros, &mut self.local);
        Self::drain(&mut self.pending_remote, rst, now_micros, &mut self.remote);
    }

    fn drain(
        pending: &mut BTreeMap<Timestamp, Vec<u64>>,
        watermark: Timestamp,
        now_micros: u64,
        out: &mut Vec<u64>,
    ) {
        let still_pending = pending.split_off(&watermark.successor());
        for (_, commits) in std::mem::replace(pending, still_pending) {
            for committed_at in commits {
                out.push(now_micros.saturating_sub(committed_at));
            }
        }
    }

    /// Completed local visibility samples (µs).
    pub fn local_samples(&self) -> &[u64] {
        &self.local
    }

    /// Completed remote visibility samples (µs).
    pub fn remote_samples(&self) -> &[u64] {
        &self.remote
    }

    /// Discards all samples collected so far (used at warm-up boundaries).
    pub fn reset(&mut self) {
        self.local.clear();
        self.remote.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(micros: u64) -> Timestamp {
        Timestamp::from_micros(micros)
    }

    #[test]
    fn disabled_sampler_records_nothing() {
        let mut s = VisibilitySampler::new(0);
        s.register_local(ts(10));
        s.advance(ts(100), ts(100), 200);
        assert!(s.local_samples().is_empty());
        assert!(!s.enabled());
    }

    #[test]
    fn local_sample_waits_for_lst() {
        let mut s = VisibilitySampler::new(1);
        s.register_local(ts(1_000));
        s.advance(ts(500), Timestamp::ZERO, 2_000);
        assert!(s.local_samples().is_empty(), "LST below ct: not yet visible");
        s.advance(ts(1_000), Timestamp::ZERO, 4_000);
        assert_eq!(s.local_samples(), &[3_000], "visible at 4000, committed at 1000");
    }

    #[test]
    fn remote_sample_waits_for_rst() {
        let mut s = VisibilitySampler::new(1);
        s.register_remote(ts(1_000));
        s.advance(ts(5_000), ts(999), 2_000);
        assert!(s.remote_samples().is_empty());
        s.advance(ts(5_000), ts(1_000), 61_000);
        assert_eq!(s.remote_samples(), &[60_000]);
    }

    #[test]
    fn sampling_rate_thins_updates() {
        let mut s = VisibilitySampler::new(10);
        for i in 1..=100 {
            s.register_local(ts(i));
        }
        s.advance(ts(1_000), Timestamp::ZERO, 2_000);
        assert_eq!(s.local_samples().len(), 10);
    }

    #[test]
    fn latency_saturates_at_zero() {
        let mut s = VisibilitySampler::new(1);
        // Skewed clock put the commit timestamp "in the future".
        s.register_local(ts(10_000));
        s.advance(ts(10_000), Timestamp::ZERO, 9_000);
        assert_eq!(s.local_samples(), &[0]);
    }

    #[test]
    fn reset_clears_samples() {
        let mut s = VisibilitySampler::new(1);
        s.register_local(ts(1));
        s.advance(ts(1), Timestamp::ZERO, 5);
        assert_eq!(s.local_samples().len(), 1);
        s.reset();
        assert!(s.local_samples().is_empty());
    }
}
