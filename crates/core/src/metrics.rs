//! Per-partition instrumentation: the server's metric handles and the
//! tx-lifecycle trace ring.
//!
//! Every [`WrenServer`](crate::WrenServer) owns a private
//! [`wren_obs::Registry`] and creates its handles once at construction,
//! so the protocol hot paths record through pre-resolved lock-free
//! handles (see the `wren-obs` crate docs for the record → snapshot →
//! exposition layering). Metric names are unprefixed: a cluster merges
//! the per-partition snapshots, so `commit_prepare_micros` in the
//! merged view is the histogram across all partitions.

use wren_clock::Timestamp;
use wren_obs::{Counter, Gauge, Histogram, Registry, TraceRing};
use wren_protocol::{ServerId, TxId};

/// Capacity of each partition's trace ring: enough history to explain a
/// failed chaos round without holding the whole run.
pub const TRACE_RING_EVENTS: usize = 512;

/// One entry in a partition's tx-lifecycle trace ring. Timestamps are
/// HLC values (or true-time micros for infrastructure events), so a
/// merged dump across partitions interleaves meaningfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxEvent {
    /// A coordinator assigned a snapshot to a new transaction.
    TxBegin {
        /// The transaction.
        tx: TxId,
        /// The local-stable snapshot time handed to the client.
        lt: Timestamp,
    },
    /// A cohort voted: the transaction is in its prepared list.
    Prepared {
        /// The transaction.
        tx: TxId,
        /// The proposed commit (prepare) timestamp.
        pt: Timestamp,
    },
    /// The coordinator fixed the commit outcome.
    Decided {
        /// The transaction.
        tx: TxId,
        /// The commit timestamp (max over votes).
        ct: Timestamp,
    },
    /// The coordinator aborted an in-doubt 2PC round (missing votes past
    /// the abort timeout) and told the client.
    AbortedInDoubt {
        /// The transaction.
        tx: TxId,
    },
    /// A replication tick installed committed transactions locally.
    Applied {
        /// Upper bound the version clock advanced to.
        ub: Timestamp,
        /// Transactions applied by this tick.
        txs: u64,
    },
    /// The partition's stable cut (LST/RST) advanced.
    Stable {
        /// New local stable time.
        lst: Timestamp,
        /// New remote stable time.
        rst: Timestamp,
    },
    /// The cluster driver killed this partition (crash injection).
    KillPartition {
        /// The killed replica.
        server: ServerId,
    },
    /// The cluster driver restarted this partition from its log.
    Restart {
        /// The restarted replica.
        server: ServerId,
    },
    /// The restarted partition opened catch-up windows to its siblings.
    Rejoin {
        /// The rejoining replica.
        server: ServerId,
    },
    /// A live link carrying traffic from `peer` broke.
    LinkLost {
        /// The peer whose frames died with the connection.
        peer: ServerId,
    },
    /// A previously-lost link came back (catch-up window closed).
    LinkHealed {
        /// The peer the lane is re-open to.
        peer: ServerId,
    },
}

/// Pre-resolved metric handles for one partition server. All handles
/// alias the server's [`Registry`]; recording is lock-free.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    registry: Registry,
    /// Commit stage 1 — prepare fan-out to last vote, in µs.
    pub commit_prepare_micros: Histogram,
    /// Commit stage 2 — cohort vote sent to commit verdict applied, µs.
    pub commit_decide_micros: Histogram,
    /// Commit stage 3 — commit verdict to replication-tick install, µs.
    pub commit_apply_micros: Histogram,
    /// Read-slice service time in µs (writer path and read workers).
    pub read_slice_micros: Histogram,
    /// Synchronous WAL flush (write + fsync) in µs.
    pub wal_fsync_micros: Histogram,
    /// WAL record payload sizes in bytes.
    pub wal_append_bytes: Histogram,
    /// Commit points made durable per fsync (1 under `Always`, `n`
    /// under `EveryN`, the window's take under `Window`).
    pub wal_group_commit_size: Histogram,
    /// Checkpoint encode + rotate duration in µs.
    pub checkpoint_micros: Histogram,
    /// Transactions per shipped replication batch.
    pub replication_batch_txs: Histogram,
    /// Remote batch age at apply (now − batch ct) in µs.
    pub replication_lag_micros: Histogram,
    /// Local visibility lag (now − LST) in µs, sampled at stable raises.
    pub visibility_lag_local_micros: Histogram,
    /// Remote visibility lag (now − RST) in µs.
    pub visibility_lag_remote_micros: Histogram,
    /// Latest local visibility lag (gauge twin of the histogram).
    pub visibility_lag_local_gauge: Gauge,
    /// Latest remote visibility lag.
    pub visibility_lag_remote_gauge: Gauge,
    /// In-doubt 2PC rounds the coordinator aborted (and reported to the
    /// client; see the chaos oracle's exactness argument).
    pub tx_aborts_indoubt: Counter,
    /// Slice requests served (shared with `SliceReader` handles).
    pub slices_served: Counter,
    /// Individual keys read.
    pub keys_read: Counter,
}

impl ServerMetrics {
    /// Creates every handle against a fresh registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        ServerMetrics {
            commit_prepare_micros: registry.histogram("commit_prepare_micros"),
            commit_decide_micros: registry.histogram("commit_decide_micros"),
            commit_apply_micros: registry.histogram("commit_apply_micros"),
            read_slice_micros: registry.histogram("read_slice_micros"),
            wal_fsync_micros: registry.histogram("wal_fsync_micros"),
            wal_append_bytes: registry.histogram("wal_append_bytes"),
            wal_group_commit_size: registry.histogram("wal_group_commit_size"),
            checkpoint_micros: registry.histogram("checkpoint_micros"),
            replication_batch_txs: registry.histogram("replication_batch_txs"),
            replication_lag_micros: registry.histogram("replication_lag_micros"),
            visibility_lag_local_micros: registry.histogram("visibility_lag_local_micros"),
            visibility_lag_remote_micros: registry.histogram("visibility_lag_remote_micros"),
            visibility_lag_local_gauge: registry.gauge("visibility_lag_local"),
            visibility_lag_remote_gauge: registry.gauge("visibility_lag_remote"),
            tx_aborts_indoubt: registry.counter("tx_aborts_indoubt"),
            slices_served: registry.counter("slices_served"),
            keys_read: registry.counter("keys_read"),
            registry,
        }
    }

    /// The registry behind the handles (snapshot/merge at cluster level).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

/// A partition's trace ring type (events are [`TxEvent`]s).
pub type ServerTrace = TraceRing<TxEvent>;
