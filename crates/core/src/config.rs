/// Static configuration shared by every Wren server and client.
///
/// Defaults follow the paper's evaluation: stabilization every 5 ms
/// (§V-A "The stabilization protocols run every 5 milliseconds"), with a
/// 1 ms apply/replication tick and a 50 ms garbage-collection exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WrenConfig {
    /// Number of data centers (`M`).
    pub n_dcs: u8,
    /// Number of partitions per DC (`N`).
    pub n_partitions: u16,
    /// Δ_R: how often a server applies committed transactions, advances
    /// its version clock and ships replication batches/heartbeats
    /// (Algorithm 4 line 5), in microseconds.
    pub replication_tick_micros: u64,
    /// Δ_G: how often partitions exchange BiST stabilization gossip
    /// (Algorithm 4 line 29), in microseconds.
    pub gossip_tick_micros: u64,
    /// How often partitions exchange GC watermarks and prune version
    /// chains, in microseconds. Zero disables garbage collection.
    pub gc_tick_micros: u64,
    /// Visibility sampling: record one visibility latency sample every
    /// `visibility_sample_every` applied updates (0 disables sampling).
    pub visibility_sample_every: u64,
    /// BiST dissemination topology: `0` = all-to-all broadcast; `k ≥ 1` =
    /// a k-ary aggregation tree rooted at partition 0 (the paper's
    /// "partitions within a DC are organized as a tree to reduce
    /// communication costs", §IV-B), trading one extra round of
    /// stabilization lag per tree level for O(N) instead of O(N²)
    /// messages.
    pub gossip_fanout: u16,
}

impl Default for WrenConfig {
    fn default() -> Self {
        WrenConfig {
            n_dcs: 3,
            n_partitions: 8,
            replication_tick_micros: 1_000,
            gossip_tick_micros: 5_000,
            gc_tick_micros: 50_000,
            visibility_sample_every: 0,
            gossip_fanout: 0,
        }
    }
}

impl WrenConfig {
    /// Convenience constructor for an `m` DC × `n` partition deployment
    /// with default tick intervals.
    pub fn new(m: u8, n: u16) -> Self {
        WrenConfig {
            n_dcs: m,
            n_partitions: n,
            ..WrenConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = WrenConfig::default();
        assert_eq!(c.gossip_tick_micros, 5_000, "paper: stabilization every 5 ms");
        assert_eq!(c.n_dcs, 3);
        assert_eq!(c.n_partitions, 8);
    }

    #[test]
    fn new_overrides_shape() {
        let c = WrenConfig::new(5, 16);
        assert_eq!(c.n_dcs, 5);
        assert_eq!(c.n_partitions, 16);
        assert_eq!(c.gossip_tick_micros, WrenConfig::default().gossip_tick_micros);
    }
}
