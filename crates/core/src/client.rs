use std::collections::{BTreeMap, HashMap};
use wren_clock::Timestamp;
use wren_protocol::{ClientId, Key, ServerId, TxId, Value, WrenMsg};

/// Client-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Transactions started.
    pub txs_started: u64,
    /// Update transactions committed (non-empty write set).
    pub txs_committed: u64,
    /// Keys answered from the write-set (read-your-writes within the tx).
    pub hits_write_set: u64,
    /// Keys answered from the read-set (repeatable reads).
    pub hits_read_set: u64,
    /// Keys answered from the client-side cache (the CANToR component).
    pub hits_cache: u64,
    /// Keys fetched from servers.
    pub server_reads: u64,
    /// Cache entries pruned because the stable snapshot caught up.
    pub cache_pruned: u64,
}

/// What a [`WrenClient::read`] call produced: values served locally plus
/// an optional request for the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadOutcome {
    /// Keys answered from the write-set, read-set or client-side cache.
    pub local: Vec<(Key, Option<Value>)>,
    /// Request to forward to the coordinator for the remaining keys, if
    /// any.
    pub request: Option<WrenMsg>,
}

/// The phase of the in-flight transaction, used to validate the driver's
/// call sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for `StartTxResp`.
    Starting,
    /// Between operations.
    Idle,
    /// Waiting for `TxReadResp`.
    Reading,
    /// Waiting for `CommitResp`.
    Committing,
}

#[derive(Debug)]
struct ActiveTx {
    id: TxId,
    phase: Phase,
    /// Write set `WS_c`: buffered writes, last value per key wins.
    ws: BTreeMap<Key, Value>,
    /// Read set `RS_c`: values observed in this transaction.
    rs: HashMap<Key, Option<Value>>,
}

/// A cached own-write: the CANToR client-side cache entry (`WC_c`).
#[derive(Debug, Clone, PartialEq)]
struct CacheEntry {
    value: Value,
    ct: Timestamp,
}

/// A Wren client session: Algorithm 1 of the paper.
///
/// CANToR makes transaction snapshots *older* than the freshest local data
/// (everything up to the LST), and compensates with a **private cache** of
/// the client's own writes that the stable snapshot does not cover yet:
/// reads check the write-set, then the read-set, then the cache, and only
/// then go to a server — so a client always observes its own writes even
/// though the snapshot lags.
///
/// The client is sans-io: methods return [`WrenMsg`]s for the driver to
/// deliver to the coordinator, and `on_*` methods consume the responses.
///
/// # Example (driver loop shape)
///
/// ```no_run
/// use wren_core::WrenClient;
/// use wren_protocol::{ClientId, Key, ServerId};
///
/// let mut client = WrenClient::new(ClientId(0), ServerId::new(0, 0));
/// let _start_msg = client.start();
/// // deliver to coordinator, receive resp...
/// // client.on_start_resp(resp);
/// let outcome = client.read(&[Key(1), Key(2)]);
/// // forward outcome.request (if Some) to the coordinator...
/// ```
#[derive(Debug)]
pub struct WrenClient {
    id: ClientId,
    coordinator: ServerId,
    /// Snapshot components of the current/last transaction.
    lst: Timestamp,
    rst: Timestamp,
    /// Commit time of the client's last update transaction (`hwt_c`).
    hwt: Timestamp,
    tx: Option<ActiveTx>,
    cache: HashMap<Key, CacheEntry>,
    /// Set while migrating to another DC: the timestamp the new DC's
    /// remote snapshot must reach before this session may resume.
    migration_floor: Option<Timestamp>,
    stats: ClientStats,
}

impl WrenClient {
    /// Creates a session that uses `coordinator` for every transaction
    /// (the evaluation collocates each client with its coordinator
    /// partition, §V-A).
    pub fn new(id: ClientId, coordinator: ServerId) -> Self {
        WrenClient {
            id,
            coordinator,
            lst: Timestamp::ZERO,
            rst: Timestamp::ZERO,
            hwt: Timestamp::ZERO,
            tx: None,
            cache: HashMap::new(),
            migration_floor: None,
            stats: ClientStats::default(),
        }
    }

    /// This session's client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The coordinator this session talks to.
    pub fn coordinator(&self) -> ServerId {
        self.coordinator
    }

    /// Client statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Commit time of this client's last update transaction.
    pub fn hwt(&self) -> Timestamp {
        self.hwt
    }

    /// Number of own-writes currently held in the client-side cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Whether a transaction is currently active.
    pub fn in_tx(&self) -> bool {
        self.tx.is_some()
    }

    /// Begins migrating this session to a coordinator in (potentially)
    /// another DC — the extension the paper sketches in §II-A footnote 1:
    /// the client blocks until the last snapshot it has seen (and its own
    /// writes) are installed in the new DC.
    ///
    /// After calling this, drive `start()` / `on_start_resp()` until
    /// [`WrenClient::migration_ready`] returns `true`; until then the
    /// started transactions are not safe and must be committed empty
    /// (which also clears the coordinator's context). The old DC's stable
    /// times are *not* piggybacked to the new coordinator — they describe
    /// a different DC's partitions and would poison its watermarks.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is active.
    pub fn migrate_to(&mut self, new_coordinator: ServerId) {
        assert!(self.tx.is_none(), "cannot migrate inside a transaction");
        // Everything this session causally depends on, as one scalar: its
        // old snapshot (lst covers old-DC items, rst the rest) and its own
        // writes (hwt). In the new DC all of these are "remote", so the
        // assigned remote snapshot must reach this floor.
        let floor = self.lst.max(self.rst).max(self.hwt);
        self.migration_floor = Some(floor);
        self.coordinator = new_coordinator;
        self.lst = Timestamp::ZERO;
        self.rst = Timestamp::ZERO;
    }

    /// `true` once a post-[`migrate_to`](WrenClient::migrate_to) snapshot
    /// covered the migration floor; the session is then safe to use.
    /// Always `true` when no migration is in progress.
    pub fn migration_ready(&self) -> bool {
        self.migration_floor.is_none()
    }

    /// Begins a transaction: returns the `StartTxReq` to send to the
    /// coordinator (Algorithm 1 lines 1–7).
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active.
    pub fn start(&mut self) -> WrenMsg {
        assert!(self.tx.is_none(), "transaction already active");
        self.tx = Some(ActiveTx {
            id: TxId::from_raw(0),
            phase: Phase::Starting,
            ws: BTreeMap::new(),
            rs: HashMap::new(),
        });
        self.stats.txs_started += 1;
        WrenMsg::StartTxReq {
            lst: self.lst,
            rst: self.rst,
        }
    }

    /// Consumes the coordinator's `StartTxResp`: adopts the snapshot and
    /// prunes cache entries the stable snapshot now covers.
    pub fn on_start_resp(&mut self, msg: WrenMsg) {
        let WrenMsg::StartTxResp { tx, lst, rst } = msg else {
            panic!("expected StartTxResp, got {msg:?}");
        };
        let active = self.tx.as_mut().expect("no transaction active");
        assert_eq!(active.phase, Phase::Starting, "unexpected StartTxResp");
        active.id = tx;
        active.phase = Phase::Idle;
        self.lst = lst;
        self.rst = rst;
        if let Some(floor) = self.migration_floor {
            // Migration completes when the new DC's remote snapshot covers
            // everything the session saw or wrote in its old DC. The cache
            // is then fully covered by the snapshot (as remote versions)
            // and can be dropped wholesale.
            if rst >= floor {
                self.migration_floor = None;
                self.stats.cache_pruned += self.cache.len() as u64;
                self.cache.clear();
            }
            return;
        }
        // Algorithm 1 line 6: drop own-writes with ct ≤ lst — they are in
        // the stable snapshot now, so servers will serve them.
        let before = self.cache.len();
        self.cache.retain(|_, e| e.ct > lst);
        self.stats.cache_pruned += (before - self.cache.len()) as u64;
    }

    /// Reads `keys` within the active transaction (Algorithm 1 lines
    /// 8–20): serves what it can from the write-set, read-set and cache
    /// (in that order) and returns a `TxReadReq` for the rest.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active or another operation is in
    /// flight.
    pub fn read(&mut self, keys: &[Key]) -> ReadOutcome {
        assert!(
            self.migration_floor.is_none(),
            "session is migrating: wait for migration_ready()"
        );
        let active = self.tx.as_mut().expect("no transaction active");
        assert_eq!(active.phase, Phase::Idle, "operation already in flight");

        let mut local = Vec::new();
        let mut remote = Vec::new();
        for &k in keys {
            if let Some(v) = active.ws.get(&k) {
                self.stats.hits_write_set += 1;
                local.push((k, Some(v.clone())));
            } else if let Some(v) = active.rs.get(&k) {
                self.stats.hits_read_set += 1;
                local.push((k, v.clone()));
            } else if let Some(e) = self.cache.get(&k) {
                self.stats.hits_cache += 1;
                local.push((k, Some(e.value.clone())));
            } else {
                remote.push(k);
            }
        }
        // Locally-served keys still enter the read set (repeatable reads).
        for (k, v) in &local {
            active.rs.insert(*k, v.clone());
        }
        let request = if remote.is_empty() {
            None
        } else {
            self.stats.server_reads += remote.len() as u64;
            active.phase = Phase::Reading;
            Some(WrenMsg::TxReadReq {
                tx: active.id,
                keys: remote,
            })
        };
        ReadOutcome { local, request }
    }

    /// Consumes a `TxReadResp`, returning the `(key, value)` pairs it
    /// carried after recording them in the read set.
    pub fn on_read_resp(&mut self, msg: WrenMsg) -> Vec<(Key, Option<Value>)> {
        let WrenMsg::TxReadResp { tx, items } = msg else {
            panic!("expected TxReadResp, got {msg:?}");
        };
        let active = self.tx.as_mut().expect("no transaction active");
        assert_eq!(active.id, tx, "response for a different transaction");
        assert_eq!(active.phase, Phase::Reading, "unexpected TxReadResp");
        active.phase = Phase::Idle;
        let mut out = Vec::with_capacity(items.len());
        for (k, version) in items {
            let value = version.map(|d| d.value);
            active.rs.insert(k, value.clone());
            out.push((k, value));
        }
        out
    }

    /// Buffers writes in the write-set (Algorithm 1 lines 21–25).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active or another operation is in
    /// flight.
    pub fn write<I: IntoIterator<Item = (Key, Value)>>(&mut self, kvs: I) {
        assert!(
            self.migration_floor.is_none(),
            "session is migrating: wait for migration_ready()"
        );
        let active = self.tx.as_mut().expect("no transaction active");
        assert_eq!(active.phase, Phase::Idle, "operation already in flight");
        for (k, v) in kvs {
            active.ws.insert(k, v);
        }
    }

    /// Commits the transaction (Algorithm 1 lines 26–32): returns the
    /// `CommitReq` carrying the write-set and the client's highest write
    /// time.
    ///
    /// A read-only transaction also sends the (empty) request so the
    /// coordinator tears down its per-transaction context; the reply
    /// carries a zero timestamp in that case.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active or another operation is in
    /// flight.
    pub fn commit(&mut self) -> WrenMsg {
        let active = self.tx.as_mut().expect("no transaction active");
        assert_eq!(active.phase, Phase::Idle, "operation already in flight");
        active.phase = Phase::Committing;
        WrenMsg::CommitReq {
            tx: active.id,
            hwt: self.hwt,
            writes: active.ws.iter().map(|(k, v)| (*k, v.clone())).collect(),
        }
    }

    /// Consumes the `CommitResp`: tags the write-set with the commit
    /// timestamp and moves it into the client-side cache, overwriting
    /// older entries for the same keys. Returns the commit timestamp
    /// (zero for a read-only transaction).
    pub fn on_commit_resp(&mut self, msg: WrenMsg) -> Timestamp {
        let WrenMsg::CommitResp { tx, ct } = msg else {
            panic!("expected CommitResp, got {msg:?}");
        };
        let active = self.tx.take().expect("no transaction active");
        assert_eq!(active.id, tx, "response for a different transaction");
        assert_eq!(active.phase, Phase::Committing, "unexpected CommitResp");
        if ct.is_zero() {
            // Read-only transaction: nothing to cache, hwt unchanged.
            return ct;
        }
        self.hwt = ct;
        for (k, value) in active.ws {
            self.cache.insert(k, CacheEntry { value, ct });
        }
        self.stats.txs_committed += 1;
        ct
    }

    /// Abandons the active transaction client-side (used by drivers on
    /// shutdown; the coordinator context, if any, is reclaimed lazily).
    pub fn abort(&mut self) {
        self.tx = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn val(s: &'static str) -> Value {
        Bytes::from_static(s.as_bytes())
    }

    fn respond_start(client: &mut WrenClient, lst: u64, rst: u64) {
        let tx = TxId::new(ServerId::new(0, 0), 1);
        client.on_start_resp(WrenMsg::StartTxResp {
            tx,
            lst: Timestamp::from_micros(lst),
            rst: Timestamp::from_micros(rst),
        });
    }

    #[test]
    fn start_carries_snapshot_and_prunes_cache() {
        let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
        // Seed the cache through a committed tx.
        let _ = c.start();
        respond_start(&mut c, 0, 0);
        c.write([(Key(1), val("a")), (Key(2), val("b"))]);
        let commit = c.commit();
        assert!(matches!(commit, WrenMsg::CommitReq { ref writes, .. } if writes.len() == 2));
        let tx = TxId::new(ServerId::new(0, 0), 1);
        c.on_commit_resp(WrenMsg::CommitResp {
            tx,
            ct: Timestamp::from_micros(100),
        });
        assert_eq!(c.cache_len(), 2);

        // Next start: snapshot still below ct → cache kept.
        let msg = c.start();
        assert!(matches!(msg, WrenMsg::StartTxReq { .. }));
        respond_start(&mut c, 50, 40);
        assert_eq!(c.cache_len(), 2);
        let _ = c.commit();
        c.on_commit_resp(WrenMsg::CommitResp {
            tx,
            ct: Timestamp::ZERO,
        });

        // Snapshot catches up → cache pruned (Algorithm 1 line 6).
        let _ = c.start();
        respond_start(&mut c, 100, 90);
        assert_eq!(c.cache_len(), 0);
        assert_eq!(c.stats().cache_pruned, 2);
    }

    #[test]
    fn read_checks_ws_then_rs_then_cache() {
        let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
        let _ = c.start();
        respond_start(&mut c, 0, 0);
        c.write([(Key(1), val("ws"))]);

        let outcome = c.read(&[Key(1), Key(9)]);
        assert_eq!(outcome.local, vec![(Key(1), Some(val("ws")))]);
        let Some(WrenMsg::TxReadReq { tx, keys }) = outcome.request else {
            panic!("expected a server read");
        };
        assert_eq!(keys, vec![Key(9)]);

        // Server answers; value lands in the read set.
        let fetched = c.on_read_resp(WrenMsg::TxReadResp {
            tx,
            items: vec![(Key(9), None)],
        });
        assert_eq!(fetched, vec![(Key(9), None)]);

        // Second read of key 9 is a read-set hit (repeatable reads).
        let outcome = c.read(&[Key(9)]);
        assert_eq!(outcome.local, vec![(Key(9), None)]);
        assert!(outcome.request.is_none());
        assert_eq!(c.stats().hits_read_set, 1);
        assert_eq!(c.stats().hits_write_set, 1);
    }

    #[test]
    fn cache_serves_own_writes_across_transactions() {
        let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
        let tx = TxId::new(ServerId::new(0, 0), 1);
        let _ = c.start();
        respond_start(&mut c, 0, 0);
        c.write([(Key(7), val("mine"))]);
        let _ = c.commit();
        c.on_commit_resp(WrenMsg::CommitResp {
            tx,
            ct: Timestamp::from_micros(500),
        });

        // New tx with a snapshot that does NOT include ct=500.
        let _ = c.start();
        respond_start(&mut c, 100, 99);
        let outcome = c.read(&[Key(7)]);
        assert_eq!(outcome.local, vec![(Key(7), Some(val("mine")))]);
        assert!(outcome.request.is_none(), "cache hit needs no server read");
        assert_eq!(c.stats().hits_cache, 1);
    }

    #[test]
    fn read_only_commit_keeps_hwt() {
        let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
        let tx = TxId::new(ServerId::new(0, 0), 1);
        let _ = c.start();
        respond_start(&mut c, 0, 0);
        let msg = c.commit();
        assert!(matches!(msg, WrenMsg::CommitReq { ref writes, .. } if writes.is_empty()));
        let ct = c.on_commit_resp(WrenMsg::CommitResp {
            tx,
            ct: Timestamp::ZERO,
        });
        assert!(ct.is_zero());
        assert_eq!(c.hwt(), Timestamp::ZERO);
        assert_eq!(c.stats().txs_committed, 0, "read-only txs are not updates");
    }

    #[test]
    fn write_overwrites_within_write_set() {
        let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
        let _ = c.start();
        respond_start(&mut c, 0, 0);
        c.write([(Key(1), val("first"))]);
        c.write([(Key(1), val("second"))]);
        let WrenMsg::CommitReq { writes, .. } = c.commit() else {
            panic!()
        };
        assert_eq!(writes, vec![(Key(1), val("second"))]);
    }

    #[test]
    #[should_panic(expected = "transaction already active")]
    fn double_start_panics() {
        let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
        let _ = c.start();
        let _ = c.start();
    }

    #[test]
    #[should_panic(expected = "no transaction active")]
    fn read_without_tx_panics() {
        let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
        let _ = c.read(&[Key(1)]);
    }

    #[test]
    fn abort_clears_transaction() {
        let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
        let _ = c.start();
        assert!(c.in_tx());
        c.abort();
        assert!(!c.in_tx());
        let _ = c.start(); // can start again
    }
}
