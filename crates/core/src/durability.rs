//! The typed durability layer: WAL records, checkpoint payloads and the
//! generation machinery tying them together.
//!
//! Layering (mirroring the sans-io split of the network stack):
//!
//! * `wren_storage::wal` / `wren_storage::checkpoint` — byte-level files:
//!   CRC-framed records with a total valid-prefix reader, atomically
//!   renamed snapshot files. They know nothing about Wren.
//! * **this module** — the typed record set ([`WalOp`]) encoded with the
//!   protocol codec (`wire_size`-exact, same discipline as [`WrenMsg`]
//!   (`wren_protocol::WrenMsg`)), plus [`DurableLog`]: one partition's
//!   durability directory holding paired generations `ckpt.N`/`wal.N`.
//! * `WrenServer` (in [`server`](crate::server)) — decides *what* to log
//!   (local commits, replication batches, stable advances), encodes its
//!   full state into checkpoint payloads, and replays records onto a
//!   fresh instance at boot ([`WrenServer::recover`]).
//!
//! # Generations
//!
//! A checkpoint at sequence `N` captures all state produced by records
//! in `wal.0 .. wal.{N-1}`; `wal.N` is the log that starts empty at that
//! moment. Boot therefore loads the newest *valid* `ckpt.N` and replays
//! `wal.N, wal.{N+1}, …` in order — if the newest checkpoint is corrupt,
//! the previous generation (always retained by
//! [`checkpoint::prune_generations`]) plus its longer log chain recovers
//! the same state. A torn record tail is truncated by the storage layer;
//! a record that fails *typed* decoding ends replay at the last good
//! record (totality over panics, at the cost of dropping a suffix that
//! could only exist under version skew or silent corruption).
//!
//! [`WrenServer::recover`]: crate::WrenServer::recover
//! [`checkpoint::prune_generations`]: wren_storage::checkpoint::prune_generations

use std::path::{Path, PathBuf};
use wren_clock::Timestamp;
use wren_protocol::codec::{size, CodecError, Dec, Enc};
use wren_protocol::{Key, RepTx, TxId, Value};
use wren_storage::checkpoint;
use wren_storage::{FsyncPolicy, Wal};

const OP_PREPARED: u8 = 1;
const OP_DECIDED: u8 = 2;
const OP_COMMIT: u8 = 3;
const OP_APPLIED: u8 = 4;
const OP_REMOTE_BATCH: u8 = 5;
const OP_STABLE: u8 = 6;
const OP_CATCH_UP_DONE: u8 = 7;

/// One WAL record: everything a partition must remember across a crash
/// that is not yet covered by a checkpoint.
///
/// The record set follows the server's write path: a cohort logs
/// [`WalOp::Prepared`] before its `PrepareResp` leaves, a coordinator
/// logs [`WalOp::Decided`] before fanning out `Commit`/`CommitResp`, a
/// cohort logs [`WalOp::Commit`] when the decision arrives, the
/// replication tick logs one [`WalOp::Applied`] per data-bearing tick
/// and one [`WalOp::RemoteBatch`] per incoming `apply_batch`, and BiST
/// advances log [`WalOp::Stable`]. Group commit makes a batch of these
/// durable before the messages they justify are dispatched.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A transaction entered the prepared list (Algorithm 3 line 18).
    Prepared {
        /// The transaction.
        tx: TxId,
        /// The proposed commit timestamp.
        pt: Timestamp,
        /// The snapshot's remote component (becomes the items' `rdt`).
        rst: Timestamp,
        /// Writes owned by this cohort.
        writes: Vec<(Key, Value)>,
    },
    /// This server, as coordinator, fixed a transaction's outcome.
    /// Logged before any `Commit`/`CommitResp` leaves, so a recovered
    /// cohort can always learn the decision by re-asking.
    Decided {
        /// The transaction.
        tx: TxId,
        /// The decided commit timestamp (never zero).
        ct: Timestamp,
    },
    /// A prepared transaction moved to the committed list (`ct` nonzero)
    /// or was aborted (`ct` zero).
    Commit {
        /// The transaction.
        tx: TxId,
        /// Final commit timestamp, or zero for an abort.
        ct: Timestamp,
    },
    /// A replication tick applied every committed transaction with
    /// `ct ≤ ub` to the store and advanced the local version clock.
    Applied {
        /// The new local version clock.
        ub: Timestamp,
    },
    /// One incoming replication batch was applied (Algorithm 4 lines
    /// 22–26); one record per `apply_batch`, the PR-2 batching unit.
    RemoteBatch {
        /// Origin DC index.
        src: u8,
        /// Whether the version-vector entry for `src` was raised to
        /// `ct` (false during a catch-up window, where the vector only
        /// advances at [`WalOp::CatchUpDone`]).
        raise: bool,
        /// The batch's shared commit timestamp.
        ct: Timestamp,
        /// The transactions, exactly as received.
        txs: Vec<RepTx>,
    },
    /// The published stable snapshot advanced (logged at gossip ticks,
    /// only when changed).
    Stable {
        /// Local stable time.
        lst: Timestamp,
        /// Remote stable time.
        rst: Timestamp,
    },
    /// A post-restart catch-up from DC `src` completed covering
    /// everything up to `t`.
    CatchUpDone {
        /// Origin DC index.
        src: u8,
        /// The sibling's version clock at the end of its re-scan.
        t: Timestamp,
    },
}

pub(crate) fn put_writes(e: &mut Enc, writes: &[(Key, Value)]) {
    e.put_len(writes.len());
    for (k, v) in writes {
        e.put_key(*k);
        e.put_value(v);
    }
}

pub(crate) fn get_writes(d: &mut Dec<'_>) -> Result<Vec<(Key, Value)>, CodecError> {
    let n = d.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((d.get_key()?, d.get_value()?));
    }
    Ok(out)
}

fn writes_size(writes: &[(Key, Value)]) -> usize {
    2 + writes.iter().map(size::write_pair).sum::<usize>()
}

impl WalOp {
    /// Exact encoded size in bytes (same discipline as
    /// `WrenMsg::wire_size`; the encoder preallocates exactly this).
    pub fn wire_size(&self) -> usize {
        1 + match self {
            WalOp::Prepared { writes, .. } => 8 + 8 + 8 + writes_size(writes),
            WalOp::Decided { .. } => 16,
            WalOp::Commit { .. } => 16,
            WalOp::Applied { .. } => 8,
            WalOp::RemoteBatch { txs, .. } => {
                1 + 1
                    + 8
                    + 2
                    + txs
                        .iter()
                        .map(|t| 8 + 8 + writes_size(&t.writes))
                        .sum::<usize>()
            }
            WalOp::Stable { .. } => 16,
            WalOp::CatchUpDone { .. } => 9,
        }
    }

    /// Appends the encoding to `e`.
    pub fn encode_into(&self, e: &mut Enc) {
        match self {
            WalOp::Prepared { tx, pt, rst, writes } => {
                e.put_u8(OP_PREPARED);
                e.put_tx(*tx);
                e.put_ts(*pt);
                e.put_ts(*rst);
                put_writes(e, writes);
            }
            WalOp::Decided { tx, ct } => {
                e.put_u8(OP_DECIDED);
                e.put_tx(*tx);
                e.put_ts(*ct);
            }
            WalOp::Commit { tx, ct } => {
                e.put_u8(OP_COMMIT);
                e.put_tx(*tx);
                e.put_ts(*ct);
            }
            WalOp::Applied { ub } => {
                e.put_u8(OP_APPLIED);
                e.put_ts(*ub);
            }
            WalOp::RemoteBatch { src, raise, ct, txs } => {
                e.put_u8(OP_REMOTE_BATCH);
                e.put_u8(*src);
                e.put_u8(u8::from(*raise));
                e.put_ts(*ct);
                e.put_len(txs.len());
                for t in txs {
                    e.put_tx(t.tx);
                    e.put_ts(t.rst);
                    put_writes(e, &t.writes);
                }
            }
            WalOp::Stable { lst, rst } => {
                e.put_u8(OP_STABLE);
                e.put_ts(*lst);
                e.put_ts(*rst);
            }
            WalOp::CatchUpDone { src, t } => {
                e.put_u8(OP_CATCH_UP_DONE);
                e.put_u8(*src);
                e.put_ts(*t);
            }
        }
    }

    /// Encodes to a standalone record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(self.wire_size());
        self.encode_into(&mut e);
        e.finish().to_vec()
    }

    /// Decodes a record payload previously produced by [`WalOp::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input, unknown tags or
    /// trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(bytes);
        let op = match d.get_u8()? {
            OP_PREPARED => WalOp::Prepared {
                tx: d.get_tx()?,
                pt: d.get_ts()?,
                rst: d.get_ts()?,
                writes: get_writes(&mut d)?,
            },
            OP_DECIDED => WalOp::Decided {
                tx: d.get_tx()?,
                ct: d.get_ts()?,
            },
            OP_COMMIT => WalOp::Commit {
                tx: d.get_tx()?,
                ct: d.get_ts()?,
            },
            OP_APPLIED => WalOp::Applied { ub: d.get_ts()? },
            OP_REMOTE_BATCH => {
                let src = d.get_u8()?;
                let raise = d.get_u8()? != 0;
                let ct = d.get_ts()?;
                let n = d.get_len()?;
                let mut txs = Vec::with_capacity(n);
                for _ in 0..n {
                    txs.push(RepTx {
                        tx: d.get_tx()?,
                        rst: d.get_ts()?,
                        writes: get_writes(&mut d)?,
                    });
                }
                WalOp::RemoteBatch { src, raise, ct, txs }
            }
            OP_STABLE => WalOp::Stable {
                lst: d.get_ts()?,
                rst: d.get_ts()?,
            },
            OP_CATCH_UP_DONE => WalOp::CatchUpDone {
                src: d.get_u8()?,
                t: d.get_ts()?,
            },
            tag => return Err(CodecError::BadTag(tag)),
        };
        d.expect_end()?;
        Ok(op)
    }
}

/// A partition's durability directory: the active WAL generation plus
/// the checkpoint machinery, with typed append/replay.
pub struct DurableLog {
    dir: PathBuf,
    policy: FsyncPolicy,
    /// Active generation: appends go to `wal.{seq}`; `ckpt.{seq}` (if
    /// present) captured all earlier state.
    seq: u64,
    wal: Wal,
    /// Records appended over this log's lifetime (reporting).
    records: u64,
    /// Instrumentation re-applied to each new WAL generation (see
    /// [`DurableLog::instrument`]).
    instruments: Option<(wren_obs::Histogram, wren_obs::Histogram, wren_obs::Histogram)>,
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("dir", &self.dir)
            .field("seq", &self.seq)
            .field("records", &self.records)
            .finish_non_exhaustive()
    }
}

/// What [`DurableLog::open`] recovered from disk.
pub struct DurableBoot {
    /// The log, positioned to append after the last valid record.
    pub log: DurableLog,
    /// The newest valid checkpoint payload, if any generation had one.
    pub checkpoint: Option<Vec<u8>>,
    /// Every decodable record after that checkpoint, oldest first.
    pub ops: Vec<WalOp>,
}

impl DurableLog {
    /// Opens (or creates) the durability directory: loads the newest
    /// valid checkpoint, replays every WAL generation after it, and
    /// opens the newest generation for appending (truncating any torn
    /// tail). Recovery also sweeps crash leftovers — `ckpt.N.tmp` files
    /// from an interrupted checkpoint write and generations older than
    /// the fallback — with the same retention [`DurableLog::rotate`]
    /// enforces.
    pub fn open(dir: impl Into<PathBuf>, policy: FsyncPolicy) -> std::io::Result<DurableBoot> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let ckpt = checkpoint::load_latest(&dir);
        let base = ckpt.as_ref().map(|(seq, _)| *seq).unwrap_or(0);
        let newest_wal = wal_generations(&dir).into_iter().max().unwrap_or(base).max(base);
        // Replay only needs [base, newest]; everything before the
        // fallback generation (base - 1) is dead, as are any tmp files a
        // crash mid-`write_checkpoint` left behind.
        checkpoint::prune_generations(&dir, base.saturating_sub(1));

        let mut ops = Vec::new();
        // Replay sealed generations [base, newest) read-only…
        for seq in base..newest_wal {
            let log = wren_storage::wal::read_records(checkpoint::wal_path(&dir, seq))?;
            decode_ops(&log.records, &mut ops);
        }
        // …and the active generation with torn-tail truncation.
        let (wal, records) =
            Wal::open_for_append(checkpoint::wal_path(&dir, newest_wal), policy)?;
        decode_ops(&records, &mut ops);

        Ok(DurableBoot {
            log: DurableLog {
                dir,
                policy,
                seq: newest_wal,
                wal,
                records: 0,
                instruments: None,
            },
            checkpoint: ckpt.map(|(_, payload)| payload),
            ops,
        })
    }

    /// Attaches WAL latency/size instrumentation (`fsync_micros` per
    /// synchronous flush, `append_bytes` per record,
    /// `group_commit_size` commit points per fsync), carried across
    /// generation rotations.
    pub fn instrument(
        &mut self,
        fsync_micros: wren_obs::Histogram,
        append_bytes: wren_obs::Histogram,
        group_commit_size: wren_obs::Histogram,
    ) {
        self.wal
            .instrument(fsync_micros.clone(), append_bytes.clone(), group_commit_size.clone());
        self.instruments = Some((fsync_micros, append_bytes, group_commit_size));
    }

    /// Appends one typed record (buffered until the next commit point).
    pub fn append(&mut self, op: &WalOp) {
        let mut e = Enc::with_capacity(op.wire_size());
        op.encode_into(&mut e);
        self.wal.append(&e.finish());
        self.records += 1;
    }

    /// Appends a [`WalOp::Prepared`] record without cloning the write
    /// set (the hot path: one record per cohort prepare).
    pub fn log_prepared(&mut self, tx: TxId, pt: Timestamp, rst: Timestamp, writes: &[(Key, Value)]) {
        let mut e = Enc::with_capacity(1 + 24 + writes_size(writes));
        e.put_u8(OP_PREPARED);
        e.put_tx(tx);
        e.put_ts(pt);
        e.put_ts(rst);
        put_writes(&mut e, writes);
        self.wal.append(&e.finish());
        self.records += 1;
    }

    /// Appends a [`WalOp::RemoteBatch`] record without cloning the
    /// batch (one record per incoming `apply_batch`).
    pub fn log_remote_batch(&mut self, src: u8, raise: bool, ct: Timestamp, txs: &[RepTx]) {
        let size = 1
            + 1
            + 1
            + 8
            + 2
            + txs
                .iter()
                .map(|t| 16 + writes_size(&t.writes))
                .sum::<usize>();
        let mut e = Enc::with_capacity(size);
        e.put_u8(OP_REMOTE_BATCH);
        e.put_u8(src);
        e.put_u8(u8::from(raise));
        e.put_ts(ct);
        e.put_len(txs.len());
        for t in txs {
            e.put_tx(t.tx);
            e.put_ts(t.rst);
            put_writes(&mut e, &t.writes);
        }
        self.wal.append(&e.finish());
        self.records += 1;
    }

    /// Marks a commit point ([`Wal::commit_point`]): the fsync policy
    /// decides whether the buffered records become durable now.
    pub fn commit_point(&mut self) -> std::io::Result<()> {
        self.wal.commit_point()
    }

    /// Flushes and fsyncs everything regardless of policy (graceful
    /// stop).
    pub fn seal(&mut self) -> std::io::Result<()> {
        self.wal.seal()
    }

    /// When the open group-commit window must close
    /// ([`Wal::sync_deadline`]); `None` unless the policy is
    /// [`FsyncPolicy::Window`] with unsynced commit points pending.
    pub fn sync_deadline(&self) -> Option<std::time::Instant> {
        self.wal.sync_deadline()
    }

    /// Fsyncs everything written so far, closing any open group-commit
    /// window ([`Wal::sync_now`]).
    pub fn sync_now(&mut self) -> std::io::Result<()> {
        self.wal.sync_now()
    }

    /// Writes checkpoint generation `seq + 1` with `payload`, rotates to
    /// a fresh `wal.{seq + 1}`, and prunes generations older than `seq`
    /// (the previous generation stays as the corruption fallback).
    pub fn rotate(&mut self, payload: &[u8]) -> std::io::Result<()> {
        // Seal the old generation first: the checkpoint claims to cover
        // everything in it.
        self.wal.seal()?;
        let next = self.seq + 1;
        checkpoint::write_checkpoint(&self.dir, next, payload)?;
        self.wal = Wal::create(checkpoint::wal_path(&self.dir, next), self.policy)?;
        if let Some((fsync, append, group)) = &self.instruments {
            self.wal.instrument(fsync.clone(), append.clone(), group.clone());
        }
        self.seq = next;
        checkpoint::prune_generations(&self.dir, next.saturating_sub(1));
        Ok(())
    }

    /// The active generation number.
    pub fn generation(&self) -> u64 {
        self.seq
    }

    /// Records appended through this handle.
    pub fn records_logged(&self) -> u64 {
        self.records
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Decodes records into ops, stopping at the first undecodable record
/// (replay totality: a suffix that no longer parses is treated exactly
/// like a torn tail).
fn decode_ops(records: &[Vec<u8>], ops: &mut Vec<WalOp>) {
    for rec in records {
        match WalOp::decode(rec) {
            Ok(op) => ops.push(op),
            Err(_) => break,
        }
    }
}

/// WAL generation numbers present in `dir` (unordered).
fn wal_generations(dir: &Path) -> Vec<u64> {
    let mut seqs = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return seqs };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name.strip_prefix("wal.") {
            if let Ok(seq) = seq.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use wren_protocol::ServerId;
    use wren_storage::FsyncPolicy;

    fn sample_ops() -> Vec<WalOp> {
        let tx = TxId::new(ServerId::new(1, 2), 77);
        vec![
            WalOp::Prepared {
                tx,
                pt: Timestamp::from_parts(10, 1),
                rst: Timestamp::from_micros(5),
                writes: vec![(Key(9), Bytes::from_static(b"payload"))],
            },
            WalOp::Decided {
                tx,
                ct: Timestamp::from_micros(12),
            },
            WalOp::Commit {
                tx,
                ct: Timestamp::from_micros(12),
            },
            WalOp::Commit {
                tx,
                ct: Timestamp::ZERO,
            },
            WalOp::Applied {
                ub: Timestamp::from_micros(15),
            },
            WalOp::RemoteBatch {
                src: 1,
                raise: true,
                ct: Timestamp::from_micros(20),
                txs: vec![RepTx {
                    tx,
                    rst: Timestamp::from_micros(3),
                    writes: vec![(Key(1), Bytes::new()), (Key(2), Bytes::from_static(b"x"))],
                }],
            },
            WalOp::Stable {
                lst: Timestamp::from_micros(30),
                rst: Timestamp::from_micros(25),
            },
            WalOp::CatchUpDone {
                src: 2,
                t: Timestamp::from_micros(40),
            },
        ]
    }

    #[test]
    fn ops_round_trip_and_size_exact() {
        for op in sample_ops() {
            let bytes = op.encode();
            assert_eq!(bytes.len(), op.wire_size(), "size mismatch for {op:?}");
            assert_eq!(WalOp::decode(&bytes).expect("decodes"), op);
        }
    }

    #[test]
    fn bad_tag_and_trailing_bytes_rejected() {
        assert!(WalOp::decode(&[99]).is_err());
        let mut bytes = WalOp::Applied { ub: Timestamp::ZERO }.encode();
        bytes.push(0);
        assert!(WalOp::decode(&bytes).is_err());
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wren-durable-log-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn reference_log_methods_match_owned_encoding() {
        let dir = tmp_dir("refenc");
        let mut boot = DurableLog::open(&dir, FsyncPolicy::Off).unwrap();
        let ops = sample_ops();
        let (WalOp::Prepared { tx, pt, rst, writes }, WalOp::RemoteBatch { src, raise, ct, txs }) =
            (&ops[0], &ops[5])
        else {
            panic!("sample op order changed");
        };
        boot.log.log_prepared(*tx, *pt, *rst, writes);
        boot.log.log_remote_batch(*src, *raise, *ct, txs);
        boot.log.seal().unwrap();
        drop(boot);
        let boot = DurableLog::open(&dir, FsyncPolicy::Off).unwrap();
        assert_eq!(boot.ops, vec![ops[0].clone(), ops[5].clone()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn log_survives_seal_and_reopen() {
        let dir = tmp_dir("reopen");
        let mut boot = DurableLog::open(&dir, FsyncPolicy::Off).unwrap();
        assert!(boot.ops.is_empty());
        for op in sample_ops() {
            boot.log.append(&op);
        }
        boot.log.seal().unwrap();
        drop(boot);
        let boot = DurableLog::open(&dir, FsyncPolicy::Off).unwrap();
        assert_eq!(boot.ops, sample_ops());
        assert!(boot.checkpoint.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_pairs_checkpoint_with_fresh_wal() {
        let dir = tmp_dir("rotate");
        let mut boot = DurableLog::open(&dir, FsyncPolicy::Always).unwrap();
        boot.log.append(&sample_ops()[0]);
        boot.log.commit_point().unwrap();
        boot.log.rotate(b"state-at-gen-1").unwrap();
        assert_eq!(boot.log.generation(), 1);
        boot.log.append(&sample_ops()[4]);
        boot.log.commit_point().unwrap();
        drop(boot);

        let boot = DurableLog::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(boot.checkpoint.as_deref(), Some(&b"state-at-gen-1"[..]));
        // Only the post-checkpoint op replays.
        assert_eq!(boot.ops, vec![sample_ops()[4].clone()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_sweeps_crash_leftovers() {
        let dir = tmp_dir("sweep");
        let mut boot = DurableLog::open(&dir, FsyncPolicy::Always).unwrap();
        boot.log.rotate(b"gen1").unwrap();
        boot.log.rotate(b"gen2").unwrap();
        boot.log.rotate(b"gen3").unwrap();
        boot.log.seal().unwrap();
        drop(boot);
        // Simulate crash debris: an interrupted checkpoint write plus an
        // ancient WAL generation that escaped the runtime prune.
        std::fs::write(dir.join("ckpt.4.tmp"), b"half").unwrap();
        std::fs::write(checkpoint::wal_path(&dir, 0), b"stale").unwrap();

        let boot = DurableLog::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(boot.checkpoint.as_deref(), Some(&b"gen3"[..]));
        assert!(!dir.join("ckpt.4.tmp").exists(), "tmp swept on recovery");
        assert!(!checkpoint::wal_path(&dir, 0).exists(), "orphan wal swept");
        // The fallback generation survives recovery's sweep.
        assert!(checkpoint::checkpoint_path(&dir, 2).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_previous_generation() {
        let dir = tmp_dir("fallback");
        let mut boot = DurableLog::open(&dir, FsyncPolicy::Always).unwrap();
        boot.log.rotate(b"gen1").unwrap();
        boot.log.append(&sample_ops()[1]);
        boot.log.commit_point().unwrap();
        boot.log.rotate(b"gen2").unwrap();
        boot.log.append(&sample_ops()[2]);
        boot.log.commit_point().unwrap();
        drop(boot);
        // Corrupt ckpt.2's payload.
        let p = checkpoint::checkpoint_path(&dir, 2);
        let mut bytes = std::fs::read(&p).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();

        let boot = DurableLog::open(&dir, FsyncPolicy::Always).unwrap();
        // Falls back to gen1 and replays wal.1 (the Decided) + wal.2
        // (the Commit) to reach the same state.
        assert_eq!(boot.checkpoint.as_deref(), Some(&b"gen1"[..]));
        assert_eq!(boot.ops, vec![sample_ops()[1].clone(), sample_ops()[2].clone()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
