//! Property-based tests of the simulation kernel: FIFO delivery, CPU
//! queue conservation and determinism under arbitrary traffic patterns.

use proptest::prelude::*;
use std::any::Any;
use wren_sim::{Context, Message, MsgCategory, NetworkModel, Node, NodeId, SimTime, Simulation};

#[derive(Clone, Debug)]
struct Tagged(u64);

impl Message for Tagged {
    fn wire_size(&self) -> usize {
        8
    }
    fn category(&self) -> MsgCategory {
        MsgCategory::IntraDcTransaction
    }
}

/// Receiver recording (tag, handler start time) pairs.
struct Sink {
    service: u64,
    seen: Vec<(u64, u64)>,
}

impl Node<Tagged> for Sink {
    fn service_micros(&self, _m: &Tagged) -> u64 {
        self.service
    }
    fn on_message(&mut self, _from: NodeId, msg: Tagged, ctx: &mut Context<'_, Tagged>) {
        self.seen.push((msg.0, ctx.now().as_micros()));
    }
    fn on_timer(&mut self, _kind: u32, _ctx: &mut Context<'_, Tagged>) {}
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sender shooting a burst of tagged messages at fixed intervals.
struct Burst {
    peer: NodeId,
    gaps: Vec<u64>,
    next: usize,
}

impl Node<Tagged> for Burst {
    fn on_message(&mut self, _f: NodeId, _m: Tagged, _c: &mut Context<'_, Tagged>) {}
    fn on_timer(&mut self, _kind: u32, ctx: &mut Context<'_, Tagged>) {
        if self.next < self.gaps.len() {
            ctx.send(self.peer, Tagged(self.next as u64));
            let gap = self.gaps[self.next];
            self.next += 1;
            ctx.set_timer(gap, 0);
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn run_burst(gaps: Vec<u64>, jitter: u64, service: u64, seed: u64) -> Vec<(u64, u64)> {
    let net = NetworkModel::uniform(2, 120, jitter);
    let mut sim = Simulation::new(seed, net);
    let sink = sim.add_node(
        Box::new(Sink {
            service,
            seen: Vec::new(),
        }),
        1,
    );
    let burst = sim.add_node(
        Box::new(Burst {
            peer: sink,
            gaps,
            next: 0,
        }),
        0,
    );
    sim.start_timer(burst, 0, 0);
    sim.run_until(SimTime::from_secs(10));
    sim.typed_node_mut::<Sink>(sink).unwrap().seen.clone()
}

proptest! {
    /// FIFO: whatever the jitter, messages from one sender are handled in
    /// send order, and handler start times never decrease.
    #[test]
    fn delivery_is_fifo_under_jitter(
        gaps in proptest::collection::vec(1u64..300, 1..40),
        jitter in 0u64..400,
        seed in 0u64..1000,
    ) {
        let n = gaps.len() as u64;
        let seen = run_burst(gaps, jitter, 10, seed);
        prop_assert_eq!(seen.len() as u64, n, "every message delivered");
        for (i, (tag, _)) in seen.iter().enumerate() {
            prop_assert_eq!(*tag, i as u64, "FIFO order violated");
        }
        for w in seen.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "handler times went backwards");
        }
    }

    /// CPU conservation: a single-core sink processing B back-to-back
    /// messages of service S is busy exactly B·S microseconds, and
    /// consecutive handler starts are at least S apart.
    #[test]
    fn single_core_serializes_service(
        count in 1usize..30,
        service in 1u64..200,
        seed in 0u64..1000,
    ) {
        // All messages sent at once (gap 0): they must queue.
        let gaps = vec![0u64; count];
        let seen = run_burst(gaps, 0, service, seed);
        prop_assert_eq!(seen.len(), count);
        for w in seen.windows(2) {
            prop_assert!(
                w[1].1 >= w[0].1 + service,
                "handlers overlapped on a single core: {:?}",
                seen
            );
        }
    }

    /// Determinism: identical seeds produce identical traces; different
    /// seeds are allowed to differ (jitter), but must still be FIFO.
    #[test]
    fn identical_seeds_identical_traces(
        gaps in proptest::collection::vec(1u64..100, 1..20),
        seed in 0u64..1000,
    ) {
        let a = run_burst(gaps.clone(), 77, 5, seed);
        let b = run_burst(gaps, 77, 5, seed);
        prop_assert_eq!(a, b);
    }
}
