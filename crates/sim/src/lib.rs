//! Deterministic discrete-event simulation kernel.
//!
//! The Wren paper evaluates on a 3–5 data-center EC2 deployment. This crate
//! is the substitute substrate: a discrete-event simulator that models the
//! pieces of that deployment which shape the paper's results:
//!
//! * a **FIFO point-to-point network** with a configurable per-DC-pair
//!   one-way latency matrix and jitter ([`NetworkModel`]), mirroring the
//!   lossless FIFO channels (TCP) the paper assumes;
//! * a **CPU queue per server** ([`Simulation::add_node`] takes a core
//!   count; message handling consumes service time, so servers saturate and
//!   produce the closed-loop hockey-stick latency curves of Figs. 3–5);
//! * **deterministic randomness** — a single seeded RNG drives jitter and
//!   workload choices, so every experiment is reproducible bit-for-bit;
//! * **traffic accounting** by message category ([`TrafficStats`]), which
//!   regenerates the bytes-on-the-wire comparison of Fig. 7a.
//!
//! Protocol logic plugs in via the [`Node`] trait: a node receives messages
//! and timer callbacks through a [`Context`] that lets it send messages,
//! arm timers and consume extra CPU. The Wren, Cure and H-Cure state
//! machines are driven by thin adapter nodes in `wren-harness`.
//!
//! # Example: two nodes playing ping-pong
//!
//! ```
//! use wren_sim::{Context, Message, MsgCategory, NetworkModel, Node, NodeId, SimTime, Simulation};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Message for Ping {
//!     fn wire_size(&self) -> usize { 4 }
//!     fn category(&self) -> MsgCategory { MsgCategory::ClientServer }
//! }
//!
//! struct Echo { seen: u32 }
//! impl Node<Ping> for Echo {
//!     fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping>) {
//!         self.seen += 1;
//!         if msg.0 > 0 {
//!             ctx.send(from, Ping(msg.0 - 1));
//!         }
//!     }
//!     fn on_timer(&mut self, _kind: u32, _ctx: &mut Context<'_, Ping>) {}
//!     fn as_any(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let network = NetworkModel::uniform(2, 100, 0); // 2 nodes, 100 µs one-way
//! let mut sim = Simulation::new(7, network);
//! let a = sim.add_node(Box::new(Echo { seen: 0 }), 1);
//! let b = sim.add_node(Box::new(Echo { seen: 0 }), 1);
//! sim.inject(a, b, Ping(3));
//! sim.run_until(SimTime::from_micros(10_000));
//! assert_eq!(sim.typed_node_mut::<Echo>(b).unwrap().seen, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod node;
mod sim;
mod time;

pub use network::{Message, MsgCategory, NetworkModel, TrafficSnapshot, TrafficStats};
pub use node::{Context, Node, NodeId};
pub use sim::Simulation;
pub use time::SimTime;
