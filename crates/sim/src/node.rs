use crate::{Message, SimTime};
use rand::rngs::SmallRng;
use std::any::Any;
use std::fmt;

/// Identifies a node (server process or client process) in a simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Builds a node id from its index in the simulation.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A participant in the simulation: a protocol server or a client process.
///
/// Handlers run at a simulated instant and interact with the world only
/// through the [`Context`], which keeps them deterministic. CPU cost is
/// expressed two ways:
///
/// * [`Node::service_micros`] — fixed cost charged for handling a message
///   (the kernel queues the message on the node's cores first);
/// * [`Context::consume`] — additional data-dependent cost a handler
///   discovers while running (e.g. per-item apply cost).
pub trait Node<M: Message> {
    /// CPU time (µs) to process `msg`, charged before any output departs.
    /// Zero for infinitely fast nodes (clients).
    fn service_micros(&self, _msg: &M) -> u64 {
        0
    }

    /// CPU time (µs) to run the timer handler for `kind`.
    fn timer_service_micros(&self, _kind: u32) -> u64 {
        0
    }

    /// A message from `from` arrives.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<'_, M>);

    /// A timer armed with [`Context::set_timer`] fires.
    fn on_timer(&mut self, kind: u32, ctx: &mut Context<'_, M>);

    /// Downcasting hook so the harness can extract node state after a run.
    fn as_any(&mut self) -> &mut dyn Any;
}

/// The handler-side API of the simulation kernel.
///
/// All outputs (messages, timers) take effect when the handler's CPU slice
/// completes, preserving the "work first, then the packet leaves" behaviour
/// of a real server.
pub struct Context<'a, M: Message> {
    now: SimTime,
    node: NodeId,
    rng: &'a mut SmallRng,
    extra_cpu: u64,
    outbox: Vec<(NodeId, M)>,
    timers: Vec<(u64, u32)>,
}

impl<'a, M: Message> Context<'a, M> {
    pub(crate) fn new(now: SimTime, node: NodeId, rng: &'a mut SmallRng) -> Self {
        Context {
            now,
            node,
            rng,
            extra_cpu: 0,
            outbox: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// The simulated instant at which this handler started executing.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends `msg` to `to`; it departs when the handler's CPU slice ends.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Arms a timer that fires `delay_micros` after the handler completes.
    pub fn set_timer(&mut self, delay_micros: u64, kind: u32) {
        self.timers.push((delay_micros, kind));
    }

    /// Charges `micros` of additional CPU time to this handler (for
    /// data-dependent work such as applying a batch of updates).
    pub fn consume(&mut self, micros: u64) {
        self.extra_cpu += micros;
    }

    pub(crate) fn into_effects(self) -> Effects<M> {
        Effects {
            extra_cpu: self.extra_cpu,
            outbox: self.outbox,
            timers: self.timers,
        }
    }
}

/// What a handler produced, applied by the kernel at slice completion.
pub(crate) struct Effects<M> {
    pub(crate) extra_cpu: u64,
    pub(crate) outbox: Vec<(NodeId, M)>,
    pub(crate) timers: Vec<(u64, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgCategory;
    use rand::SeedableRng;

    #[derive(Clone, Debug)]
    struct Nop;
    impl Message for Nop {
        fn wire_size(&self) -> usize {
            0
        }
        fn category(&self) -> MsgCategory {
            MsgCategory::ClientServer
        }
    }

    #[test]
    fn context_collects_effects() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ctx: Context<'_, Nop> =
            Context::new(SimTime::from_micros(5), NodeId::new(1), &mut rng);
        assert_eq!(ctx.now().as_micros(), 5);
        assert_eq!(ctx.node_id(), NodeId::new(1));
        ctx.send(NodeId::new(2), Nop);
        ctx.set_timer(100, 7);
        ctx.consume(33);
        let fx = ctx.into_effects();
        assert_eq!(fx.outbox.len(), 1);
        assert_eq!(fx.timers, vec![(100, 7)]);
        assert_eq!(fx.extra_cpu, 33);
    }

    #[test]
    fn node_id_formats() {
        assert_eq!(format!("{}", NodeId::new(4)), "n4");
        assert_eq!(format!("{:?}", NodeId::new(4)), "n4");
        assert_eq!(NodeId::new(9).index(), 9);
    }
}
