use crate::node::Effects;
use crate::{Context, Message, NetworkModel, Node, NodeId, SimTime, TrafficStats};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

enum EventKind<M> {
    /// A message reaches `to`'s input queue.
    Arrive { from: NodeId, to: NodeId, msg: M },
    /// A timer armed by `node` fires.
    Timer { node: NodeId, kind: u32 },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct NodeSlot<M: Message> {
    node: Box<dyn Node<M>>,
    /// When each core becomes free.
    cores: Vec<SimTime>,
    busy_micros: u64,
}

/// The discrete-event simulation: an event heap, a set of nodes with CPU
/// queues, a FIFO network and a deterministic RNG.
///
/// See the [crate docs](crate) for the execution model and an example.
pub struct Simulation<M: Message> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Event<M>>>,
    nodes: Vec<NodeSlot<M>>,
    network: NetworkModel,
    rng: SmallRng,
    traffic: TrafficStats,
    events_processed: u64,
}

impl<M: Message> Simulation<M> {
    /// Creates a simulation with the given RNG seed and network model.
    pub fn new(seed: u64, network: NetworkModel) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            nodes: Vec::new(),
            network,
            rng: SmallRng::seed_from_u64(seed),
            traffic: TrafficStats::default(),
            events_processed: 0,
        }
    }

    /// Adds a node with `cores` CPU cores (0 is treated as "infinitely
    /// fast": handlers run with no queueing — appropriate for client
    /// processes whose cost the paper folds into the closed loop).
    ///
    /// Returns the node's id. Nodes must be added in the same order as the
    /// sites registered with the [`NetworkModel`].
    pub fn add_node(&mut self, node: Box<dyn Node<M>>, cores: u16) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        let cores = if cores == 0 {
            Vec::new()
        } else {
            vec![SimTime::ZERO; cores as usize]
        };
        self.nodes.push(NodeSlot {
            node,
            cores,
            busy_micros: 0,
        });
        id
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Traffic accounting (bytes/messages per category).
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Mutable access to the network model (e.g. to add pair overrides
    /// after nodes are created).
    pub fn network_mut(&mut self) -> &mut NetworkModel {
        &mut self.network
    }

    /// CPU-busy microseconds accumulated by `node`.
    pub fn cpu_busy_micros(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].busy_micros
    }

    /// Injects a message from `from` to `to` through the network at the
    /// current instant (used to bootstrap a run).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.traffic.record(msg.category(), msg.wire_size());
        let at = self
            .network
            .delivery_time(from, to, self.now, &mut self.rng);
        self.push(at, EventKind::Arrive { from, to, msg });
    }

    /// Arms a timer on `node` that fires `delay_micros` from now (used to
    /// bootstrap periodic protocol ticks and client loops).
    pub fn start_timer(&mut self, node: NodeId, delay_micros: u64, kind: u32) {
        self.push(self.now + delay_micros, EventKind::Timer { node, kind });
    }

    /// Mutable access to a node, downcast to its concrete type.
    ///
    /// Returns `None` if the node is of a different type.
    pub fn typed_node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.index()].node.as_any().downcast_mut::<T>()
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { at, seq, kind }));
    }

    /// Runs events until simulated time reaches `until` (inclusive of
    /// events stamped exactly `until`). Returns the number of events
    /// processed by this call.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(Reverse(ev)) = self.heap.peek() {
            if ev.at > until {
                break;
            }
            let Reverse(ev) = self.heap.pop().expect("peeked");
            self.now = ev.at;
            self.dispatch(ev);
            processed += 1;
        }
        self.now = until.max(self.now);
        self.events_processed += processed;
        processed
    }

    /// Runs until the event queue drains or `limit` events were processed.
    /// Returns the number processed. Useful for tests that want quiescence.
    pub fn run_to_quiescence(&mut self, limit: u64) -> u64 {
        let mut processed = 0;
        while processed < limit {
            let Some(Reverse(ev)) = self.heap.peek() else {
                break;
            };
            let _ = ev;
            let Reverse(ev) = self.heap.pop().expect("peeked");
            self.now = ev.at;
            self.dispatch(ev);
            processed += 1;
        }
        self.events_processed += processed;
        processed
    }

    fn dispatch(&mut self, ev: Event<M>) {
        let (node_id, base_service) = match &ev.kind {
            EventKind::Arrive { to, msg, .. } => {
                let slot = &self.nodes[to.index()];
                (*to, slot.node.service_micros(msg))
            }
            EventKind::Timer { node, kind } => {
                let slot = &self.nodes[node.index()];
                (*node, slot.node.timer_service_micros(*kind))
            }
        };

        // Queue on the node's cores (FCFS): the handler starts when a core
        // frees up, and everything it emits departs at slice completion.
        let idx = node_id.index();
        let start = if self.nodes[idx].cores.is_empty() {
            ev.at
        } else {
            let earliest = *self.nodes[idx].cores.iter().min().expect("has cores");
            ev.at.max(earliest)
        };

        let mut ctx = Context::new(start, node_id, &mut self.rng);
        match ev.kind {
            EventKind::Arrive { from, msg, .. } => {
                self.nodes[idx].node.on_message(from, msg, &mut ctx);
            }
            EventKind::Timer { kind, .. } => {
                self.nodes[idx].node.on_timer(kind, &mut ctx);
            }
        }
        let effects = ctx.into_effects();
        let total_service = base_service + effects.extra_cpu;
        let completion = start + total_service;

        if !self.nodes[idx].cores.is_empty() {
            let core = self.nodes[idx]
                .cores
                .iter_mut()
                .min()
                .expect("has cores");
            *core = completion;
            self.nodes[idx].busy_micros += completion - start;
        }

        self.apply_effects(node_id, completion, effects);
    }

    fn apply_effects(&mut self, node: NodeId, completion: SimTime, effects: Effects<M>) {
        for (to, msg) in effects.outbox {
            self.traffic.record(msg.category(), msg.wire_size());
            let at = self
                .network
                .delivery_time(node, to, completion, &mut self.rng);
            self.push(at, EventKind::Arrive { from: node, to, msg });
        }
        for (delay, kind) in effects.timers {
            self.push(completion + delay, EventKind::Timer { node, kind });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgCategory;
    use std::any::Any;

    #[derive(Clone, Debug)]
    enum TestMsg {
        Work(#[allow(dead_code)] u64),
    }

    impl Message for TestMsg {
        fn wire_size(&self) -> usize {
            8
        }
        fn category(&self) -> MsgCategory {
            MsgCategory::IntraDcTransaction
        }
    }

    /// Records the `ctx.now()` at which each message was handled.
    struct Recorder {
        starts: Vec<u64>,
        service: u64,
    }

    impl Node<TestMsg> for Recorder {
        fn service_micros(&self, _msg: &TestMsg) -> u64 {
            self.service
        }
        fn on_message(&mut self, _from: NodeId, _msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
            self.starts.push(ctx.now().as_micros());
        }
        fn on_timer(&mut self, _kind: u32, _ctx: &mut Context<'_, TestMsg>) {}
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends `count` messages to a peer, one per timer tick.
    struct Ticker {
        peer: NodeId,
        remaining: u64,
        period: u64,
    }

    impl Node<TestMsg> for Ticker {
        fn on_message(&mut self, _from: NodeId, _msg: TestMsg, _ctx: &mut Context<'_, TestMsg>) {}
        fn on_timer(&mut self, _kind: u32, ctx: &mut Context<'_, TestMsg>) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(self.peer, TestMsg::Work(self.remaining));
                ctx.set_timer(self.period, 0);
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn cpu_queue_serializes_messages() {
        // One-core server with 100 µs service; messages sent every 10 µs
        // must be processed back-to-back, not in parallel.
        let net = NetworkModel::uniform(2, 50, 0);
        let mut sim = Simulation::new(1, net);
        let server = sim.add_node(
            Box::new(Recorder {
                starts: Vec::new(),
                service: 100,
            }),
            1,
        );
        let client = sim.add_node(
            Box::new(Ticker {
                peer: server,
                remaining: 3,
                period: 10,
            }),
            0,
        );
        sim.start_timer(client, 0, 0);
        sim.run_until(SimTime::from_millis(10));
        let rec = sim.typed_node_mut::<Recorder>(server).unwrap();
        // Arrivals at 50, 60, 70; starts at 50, 150, 250.
        assert_eq!(rec.starts, vec![50, 150, 250]);
    }

    #[test]
    fn zero_core_nodes_run_instantly() {
        let net = NetworkModel::uniform(2, 50, 0);
        let mut sim = Simulation::new(1, net);
        let server = sim.add_node(
            Box::new(Recorder {
                starts: Vec::new(),
                service: 100, // ignored: node has 0 cores
            }),
            0,
        );
        let client = sim.add_node(
            Box::new(Ticker {
                peer: server,
                remaining: 2,
                period: 10,
            }),
            0,
        );
        sim.start_timer(client, 0, 0);
        sim.run_until(SimTime::from_millis(1));
        let rec = sim.typed_node_mut::<Recorder>(server).unwrap();
        assert_eq!(rec.starts, vec![50, 60]);
    }

    #[test]
    fn traffic_is_accounted() {
        let net = NetworkModel::uniform(2, 10, 0);
        let mut sim = Simulation::new(1, net);
        let a = sim.add_node(
            Box::new(Recorder {
                starts: Vec::new(),
                service: 0,
            }),
            1,
        );
        let b = sim.add_node(
            Box::new(Ticker {
                peer: a,
                remaining: 5,
                period: 1,
            }),
            0,
        );
        sim.start_timer(b, 0, 0);
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(sim.traffic().messages(MsgCategory::IntraDcTransaction), 5);
        assert_eq!(sim.traffic().bytes(MsgCategory::IntraDcTransaction), 40);
    }

    #[test]
    fn identical_seeds_are_deterministic() {
        let run = |seed| {
            let mut net = NetworkModel::uniform(2, 100, 30);
            net.set_pair_latency(NodeId::new(0), NodeId::new(1), 70);
            let mut sim = Simulation::new(seed, net);
            let server = sim.add_node(
                Box::new(Recorder {
                    starts: Vec::new(),
                    service: 13,
                }),
                1,
            );
            let client = sim.add_node(
                Box::new(Ticker {
                    peer: server,
                    remaining: 50,
                    period: 7,
                }),
                0,
            );
            sim.start_timer(client, 0, 0);
            sim.run_until(SimTime::from_millis(5));
            sim.typed_node_mut::<Recorder>(server).unwrap().starts.clone()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn run_to_quiescence_drains() {
        let net = NetworkModel::uniform(2, 10, 0);
        let mut sim = Simulation::new(1, net);
        let a = sim.add_node(
            Box::new(Recorder {
                starts: Vec::new(),
                service: 1,
            }),
            1,
        );
        let b = sim.add_node(
            Box::new(Ticker {
                peer: a,
                remaining: 4,
                period: 3,
            }),
            0,
        );
        sim.start_timer(b, 0, 0);
        let n = sim.run_to_quiescence(1_000_000);
        assert!(n > 0);
        assert_eq!(sim.typed_node_mut::<Recorder>(a).unwrap().starts.len(), 4);
    }

    #[test]
    fn cpu_busy_time_accumulates() {
        let net = NetworkModel::uniform(2, 10, 0);
        let mut sim = Simulation::new(1, net);
        let a = sim.add_node(
            Box::new(Recorder {
                starts: Vec::new(),
                service: 25,
            }),
            1,
        );
        let b = sim.add_node(
            Box::new(Ticker {
                peer: a,
                remaining: 4,
                period: 100,
            }),
            0,
        );
        sim.start_timer(b, 0, 0);
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.cpu_busy_micros(a), 100);
        assert_eq!(sim.cpu_busy_micros(b), 0);
    }
}
