use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds from the start of
/// the run.
///
/// Simulated time is the "true" time of an experiment: per-server
/// `SkewedClock`s (in `wren-clock`) derive their (possibly wrong)
/// physical readings from it, and all latency/throughput/visibility
/// metrics are measured in it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant `micros` microseconds from the start.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Builds an instant `millis` milliseconds from the start.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Builds an instant `secs` seconds from the start.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the start of the simulation.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the start, as a float (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier`, in microseconds.
    #[inline]
    pub fn micros_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    /// Adds `rhs` microseconds.
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    /// Saturating difference in microseconds.
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_micros(2_000_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_millis(3).as_millis_f64(), 3.0);
        assert_eq!(SimTime::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_micros(10) + 5;
        assert_eq!(t.as_micros(), 15);
        assert_eq!(t - SimTime::from_micros(3), 12);
        assert_eq!(SimTime::ZERO - t, 0, "difference saturates");
        assert_eq!(t.micros_since(SimTime::from_micros(20)), 0);
    }

    #[test]
    fn display_in_millis() {
        assert_eq!(format!("{}", SimTime::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{:?}", SimTime::from_micros(7)), "7µs");
    }
}
