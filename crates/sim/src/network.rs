use crate::{NodeId, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;
use std::fmt::Debug;

/// Traffic category of a message, for byte accounting.
///
/// Fig. 7a of the paper compares the bytes Wren and Cure put on the wire
/// for **replication** (shipping committed updates to sibling replicas,
/// including heartbeats) and for the **stabilization** protocol (intra-DC
/// gossip computing LST/RST in Wren and the GST vector in Cure). The
/// simulator tallies bytes per category so the harness can reproduce the
/// figure without packet capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgCategory {
    /// Client ↔ coordinator traffic.
    ClientServer,
    /// Intra-DC transaction traffic (slice reads, 2PC prepare/commit).
    IntraDcTransaction,
    /// Cross-DC update replication.
    Replication,
    /// Cross-DC heartbeats (progress of the replication watermark).
    Heartbeat,
    /// Intra-DC stabilization gossip (BiST / GST).
    Stabilization,
    /// Intra-DC garbage-collection watermark exchange.
    GarbageCollection,
}

impl MsgCategory {
    /// All categories, in display order.
    pub const ALL: [MsgCategory; 6] = [
        MsgCategory::ClientServer,
        MsgCategory::IntraDcTransaction,
        MsgCategory::Replication,
        MsgCategory::Heartbeat,
        MsgCategory::Stabilization,
        MsgCategory::GarbageCollection,
    ];

    fn index(self) -> usize {
        match self {
            MsgCategory::ClientServer => 0,
            MsgCategory::IntraDcTransaction => 1,
            MsgCategory::Replication => 2,
            MsgCategory::Heartbeat => 3,
            MsgCategory::Stabilization => 4,
            MsgCategory::GarbageCollection => 5,
        }
    }
}

/// A message that can travel through the simulated network.
///
/// `wire_size` must return the number of bytes the message would occupy
/// with the repository's binary codec (`wren-protocol` computes this
/// exactly); it is what the Fig. 7a accounting sums up.
pub trait Message: Clone + Debug {
    /// Exact encoded size in bytes.
    fn wire_size(&self) -> usize;
    /// Accounting category.
    fn category(&self) -> MsgCategory;
}

/// Per-category message and byte counters.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    msgs: [u64; 6],
    bytes: [u64; 6],
}

/// An immutable copy of [`TrafficStats`] taken at some instant, used to
/// diff away warm-up traffic.
#[derive(Debug, Clone, Default)]
pub struct TrafficSnapshot {
    msgs: [u64; 6],
    bytes: [u64; 6],
}

impl TrafficStats {
    /// Records one message of `size` bytes in `category`.
    pub fn record(&mut self, category: MsgCategory, size: usize) {
        let i = category.index();
        self.msgs[i] += 1;
        self.bytes[i] += size as u64;
    }

    /// Messages recorded in `category`.
    pub fn messages(&self, category: MsgCategory) -> u64 {
        self.msgs[category.index()]
    }

    /// Bytes recorded in `category`.
    pub fn bytes(&self, category: MsgCategory) -> u64 {
        self.bytes[category.index()]
    }

    /// Takes a snapshot for later diffing.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            msgs: self.msgs,
            bytes: self.bytes,
        }
    }

    /// Bytes recorded in `category` since `since` was taken.
    pub fn bytes_since(&self, since: &TrafficSnapshot, category: MsgCategory) -> u64 {
        let i = category.index();
        self.bytes[i] - since.bytes[i]
    }

    /// Messages recorded in `category` since `since` was taken.
    pub fn messages_since(&self, since: &TrafficSnapshot, category: MsgCategory) -> u64 {
        let i = category.index();
        self.msgs[i] - since.msgs[i]
    }
}

/// The latency model of the simulated network.
///
/// Every node belongs to a *site* (a data center). Delivery latency between
/// two nodes is drawn from:
///
/// * a per-pair **override** (used to collocate clients with their
///   coordinator partition, as the paper does: sub-RTT loopback latency);
/// * the **intra-site** base + jitter when both nodes share a site;
/// * the **inter-site matrix** (one-way microseconds) + proportional jitter
///   otherwise.
///
/// Channels are FIFO: the model remembers the last scheduled delivery per
/// ordered pair and never delivers an earlier-sent message later, matching
/// the paper's lossless FIFO (TCP) channel assumption.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    site_of: Vec<u16>,
    intra_base: u64,
    intra_jitter: u64,
    inter: Vec<Vec<u64>>,
    inter_jitter_frac: f64,
    overrides: HashMap<(u32, u32), u64>,
    last_delivery: HashMap<(u32, u32), SimTime>,
}

impl NetworkModel {
    /// A single-site network of `nodes` nodes with uniform `base` one-way
    /// latency and ± `jitter` microseconds of uniform noise.
    pub fn uniform(nodes: usize, base: u64, jitter: u64) -> Self {
        NetworkModel {
            site_of: vec![0; nodes],
            intra_base: base,
            intra_jitter: jitter,
            inter: vec![vec![0]],
            inter_jitter_frac: 0.0,
            overrides: HashMap::new(),
            last_delivery: HashMap::new(),
        }
    }

    /// A multi-site network.
    ///
    /// * `site_of[n]` — site index of node `n`;
    /// * `inter[a][b]` — one-way latency in µs between sites `a` and `b`
    ///   (diagonal ignored);
    /// * `intra_base ± intra_jitter` — one-way latency within a site;
    /// * `inter_jitter_frac` — multiplicative jitter on inter-site latency
    ///   (e.g. `0.05` for ±5%).
    ///
    /// # Panics
    ///
    /// Panics if `inter` is not square or a site index is out of range.
    pub fn with_sites(
        site_of: Vec<u16>,
        inter: Vec<Vec<u64>>,
        intra_base: u64,
        intra_jitter: u64,
        inter_jitter_frac: f64,
    ) -> Self {
        let sites = inter.len();
        assert!(inter.iter().all(|row| row.len() == sites), "matrix not square");
        assert!(
            site_of.iter().all(|s| (*s as usize) < sites),
            "site index out of range"
        );
        NetworkModel {
            site_of,
            intra_base,
            intra_jitter,
            inter,
            inter_jitter_frac,
            overrides: HashMap::new(),
            last_delivery: HashMap::new(),
        }
    }

    /// Fixes the one-way latency between a specific ordered pair of nodes,
    /// bypassing the site matrix (used for client/coordinator collocation).
    pub fn set_pair_latency(&mut self, from: NodeId, to: NodeId, micros: u64) {
        self.overrides.insert((from.index() as u32, to.index() as u32), micros);
        self.overrides.insert((to.index() as u32, from.index() as u32), micros);
    }

    /// The site a node belongs to.
    pub fn site_of(&self, node: NodeId) -> u16 {
        self.site_of[node.index()]
    }

    /// Registers another node in `site`, returning nothing; used by
    /// builders that add nodes incrementally.
    pub fn push_node_site(&mut self, site: u16) {
        assert!((site as usize) < self.inter.len(), "site index out of range");
        self.site_of.push(site);
    }

    /// Draws a one-way latency for `from → to` at send time `now` and
    /// returns the FIFO-corrected delivery instant.
    pub fn delivery_time(
        &mut self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> SimTime {
        let key = (from.index() as u32, to.index() as u32);
        let latency = if let Some(fixed) = self.overrides.get(&key) {
            *fixed
        } else {
            let sa = self.site_of[from.index()] as usize;
            let sb = self.site_of[to.index()] as usize;
            if sa == sb {
                let jitter = if self.intra_jitter > 0 {
                    rng.gen_range(0..=self.intra_jitter)
                } else {
                    0
                };
                self.intra_base + jitter
            } else {
                let base = self.inter[sa][sb];
                let jitter = if self.inter_jitter_frac > 0.0 {
                    let span = (base as f64 * self.inter_jitter_frac) as u64;
                    if span > 0 {
                        rng.gen_range(0..=span)
                    } else {
                        0
                    }
                } else {
                    0
                };
                base + jitter
            }
        };
        let nominal = now + latency;
        let entry = self.last_delivery.entry(key).or_insert(SimTime::ZERO);
        let actual = nominal.max(*entry);
        *entry = actual;
        actual
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn uniform_latency_is_constant_without_jitter() {
        let mut net = NetworkModel::uniform(2, 100, 0);
        let mut r = rng();
        let t = net.delivery_time(NodeId::new(0), NodeId::new(1), SimTime::ZERO, &mut r);
        assert_eq!(t.as_micros(), 100);
    }

    #[test]
    fn fifo_never_reorders() {
        let mut net = NetworkModel::uniform(2, 100, 80);
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for send_at in (0..50).map(|i| SimTime::from_micros(i * 3)) {
            let d = net.delivery_time(NodeId::new(0), NodeId::new(1), send_at, &mut r);
            assert!(d >= last, "FIFO violated: {d:?} < {last:?}");
            last = d;
        }
    }

    #[test]
    fn sites_use_matrix() {
        let mut net = NetworkModel::with_sites(
            vec![0, 0, 1],
            vec![vec![0, 40_000], vec![40_000, 0]],
            150,
            0,
            0.0,
        );
        let mut r = rng();
        let same = net.delivery_time(NodeId::new(0), NodeId::new(1), SimTime::ZERO, &mut r);
        assert_eq!(same.as_micros(), 150);
        let cross = net.delivery_time(NodeId::new(0), NodeId::new(2), SimTime::ZERO, &mut r);
        assert_eq!(cross.as_micros(), 40_000);
    }

    #[test]
    fn override_beats_matrix() {
        let mut net = NetworkModel::uniform(2, 500, 0);
        net.set_pair_latency(NodeId::new(0), NodeId::new(1), 10);
        let mut r = rng();
        let t = net.delivery_time(NodeId::new(0), NodeId::new(1), SimTime::ZERO, &mut r);
        assert_eq!(t.as_micros(), 10);
        let back = net.delivery_time(NodeId::new(1), NodeId::new(0), SimTime::ZERO, &mut r);
        assert_eq!(back.as_micros(), 10, "override is symmetric");
    }

    #[test]
    fn traffic_stats_accumulate_and_diff() {
        let mut stats = TrafficStats::default();
        stats.record(MsgCategory::Replication, 100);
        let snap = stats.snapshot();
        stats.record(MsgCategory::Replication, 50);
        stats.record(MsgCategory::Stabilization, 8);
        assert_eq!(stats.bytes(MsgCategory::Replication), 150);
        assert_eq!(stats.bytes_since(&snap, MsgCategory::Replication), 50);
        assert_eq!(stats.messages_since(&snap, MsgCategory::Stabilization), 1);
        assert_eq!(stats.messages(MsgCategory::Replication), 2);
    }

    #[test]
    #[should_panic(expected = "matrix not square")]
    fn rejects_non_square_matrix() {
        NetworkModel::with_sites(vec![0], vec![vec![0, 1]], 0, 0, 0.0);
    }
}
