//! A compact hand-rolled binary codec.
//!
//! The paper's implementation serializes messages with Google protobufs;
//! the exact framing does not matter for any result, but the *relative*
//! metadata volume (2 scalar timestamps for Wren vs. an M-entry vector for
//! Cure, Fig. 7a) does. This codec makes the accounting exact: every
//! message type's `wire_size` equals the length `encode` produces, which
//! property tests in this crate verify.
//!
//! Layout primitives (all little-endian):
//!
//! | type            | bytes            |
//! |-----------------|------------------|
//! | `u8`/`u16`/`u64`| 1 / 2 / 8        |
//! | `Timestamp`     | 8 (raw packed)   |
//! | `TxId`, `Key`   | 8                |
//! | `Value`         | 2 (len) + len    |
//! | `Vec<T>`        | 2 (count) + items|
//! | `Option<T>`     | 1 (flag) + item  |
//! | `VersionVector` | 1 (len) + 8·len  |

use crate::{DcId, Key, TxId, Value};
use bytes::{Bytes, BytesMut};
use std::fmt;
use wren_clock::{Timestamp, VersionVector};

/// Errors produced when decoding a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the message was complete.
    UnexpectedEof,
    /// The message tag byte is not a known message type.
    BadTag(u8),
    /// Decoding finished with bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of message"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encoding buffer with typed put helpers.
#[derive(Debug, Default)]
pub struct Enc {
    buf: BytesMut,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Creates an encoder whose buffer is preallocated to `capacity`
    /// bytes. Message `encode` paths pass their exact `wire_size()`, so
    /// the buffer never reallocates mid-encode.
    pub fn with_capacity(capacity: usize) -> Self {
        Enc {
            buf: BytesMut::with_capacity(capacity),
        }
    }

    /// Finishes encoding, returning the bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.extend_from_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32` (the frame length prefix).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a [`Timestamp`] (8 bytes, raw packed form).
    pub fn put_ts(&mut self, t: Timestamp) {
        self.put_u64(t.raw());
    }

    /// Appends a [`TxId`] (8 bytes).
    pub fn put_tx(&mut self, t: TxId) {
        self.put_u64(t.raw());
    }

    /// Appends a [`Key`] (8 bytes).
    pub fn put_key(&mut self, k: Key) {
        self.put_u64(k.0);
    }

    /// Appends a [`DcId`] (1 byte).
    pub fn put_dc(&mut self, d: DcId) {
        self.put_u8(d.0);
    }

    /// Appends a length-prefixed [`Value`].
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds 64 KiB (the workloads use 8-byte items).
    pub fn put_value(&mut self, v: &Value) {
        assert!(v.len() <= u16::MAX as usize, "value too large for codec");
        self.put_u16(v.len() as u16);
        self.buf.extend_from_slice(v);
    }

    /// Appends a [`VersionVector`] (1-byte length + 8 bytes per entry).
    pub fn put_vv(&mut self, vv: &VersionVector) {
        debug_assert!(vv.len() <= u8::MAX as usize);
        self.put_u8(vv.len() as u8);
        for t in vv.iter() {
            self.put_ts(t);
        }
    }

    /// Appends a `Vec` length prefix (2 bytes).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds `u16::MAX`.
    pub fn put_len(&mut self, len: usize) {
        assert!(len <= u16::MAX as usize, "collection too large for codec");
        self.put_u16(len as u16);
    }
}

/// Encoded size helpers matching [`Enc`] exactly.
pub mod size {
    use super::*;

    /// Size of a length-prefixed value.
    pub fn value(v: &Value) -> usize {
        2 + v.len()
    }

    /// Size of a version vector.
    pub fn vv(vv: &VersionVector) -> usize {
        1 + 8 * vv.len()
    }

    /// Size of a `(Key, Value)` write pair.
    pub fn write_pair(pair: &(Key, Value)) -> usize {
        8 + value(&pair.1)
    }
}

/// Decoding cursor with typed get helpers.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.buf.len()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32` (the frame length prefix).
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a [`Timestamp`].
    pub fn get_ts(&mut self) -> Result<Timestamp, CodecError> {
        Ok(Timestamp::from_raw(self.get_u64()?))
    }

    /// Reads a [`TxId`].
    pub fn get_tx(&mut self) -> Result<TxId, CodecError> {
        Ok(TxId::from_raw(self.get_u64()?))
    }

    /// Reads a [`Key`].
    pub fn get_key(&mut self) -> Result<Key, CodecError> {
        Ok(Key(self.get_u64()?))
    }

    /// Reads a [`DcId`].
    pub fn get_dc(&mut self) -> Result<DcId, CodecError> {
        Ok(DcId(self.get_u8()?))
    }

    /// Reads a length-prefixed [`Value`].
    pub fn get_value(&mut self) -> Result<Value, CodecError> {
        let len = self.get_u16()? as usize;
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    /// Reads a [`VersionVector`].
    pub fn get_vv(&mut self) -> Result<VersionVector, CodecError> {
        let len = self.get_u8()? as usize;
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            entries.push(self.get_ts()?);
        }
        Ok(VersionVector::from_entries(entries))
    }

    /// Reads a collection length prefix.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        Ok(self.get_u16()? as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u16(300);
        e.put_u64(1 << 50);
        e.put_ts(Timestamp::from_parts(9, 2));
        e.put_value(&Bytes::from_static(b"hello"));
        e.put_vv(&VersionVector::from_entries(vec![
            Timestamp::from_micros(1),
            Timestamp::from_micros(2),
        ]));
        let bytes = e.finish();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u16().unwrap(), 300);
        assert_eq!(d.get_u64().unwrap(), 1 << 50);
        assert_eq!(d.get_ts().unwrap(), Timestamp::from_parts(9, 2));
        assert_eq!(d.get_value().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(d.get_vv().unwrap().len(), 2);
        assert!(d.expect_end().is_ok());
    }

    #[test]
    fn eof_is_detected() {
        let mut d = Dec::new(&[1, 2]);
        assert_eq!(d.get_u64().unwrap_err(), CodecError::UnexpectedEof);
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let d = Dec::new(&[0]);
        assert_eq!(d.expect_end().unwrap_err(), CodecError::TrailingBytes(1));
    }

    #[test]
    fn size_helpers_match_encoding() {
        let v = Bytes::from_static(b"12345678");
        let mut e = Enc::new();
        e.put_value(&v);
        assert_eq!(e.finish().len(), size::value(&v));

        let vv = VersionVector::new(5);
        let mut e = Enc::new();
        e.put_vv(&vv);
        assert_eq!(e.finish().len(), size::vv(&vv));
    }

    #[test]
    fn error_display_is_meaningful() {
        assert_eq!(CodecError::UnexpectedEof.to_string(), "unexpected end of message");
        assert_eq!(CodecError::BadTag(9).to_string(), "unknown message tag 9");
        assert!(CodecError::TrailingBytes(3).to_string().contains("3"));
    }
}
