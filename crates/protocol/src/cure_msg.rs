use crate::codec::{size, CodecError, Dec, Enc};
use crate::{CureRepTx, CureReplicateBatch, CureVersion, Key, TxId, Value};
use bytes::Bytes;
use wren_clock::{Timestamp, VersionVector};
use wren_sim::{Message, MsgCategory};

/// All messages of the Cure baseline (and its H-Cure variant, which uses
/// the same wire format).
///
/// The structural difference from [`WrenMsg`](crate::WrenMsg) is metadata
/// size: snapshots, item versions, replication and stabilization all carry
/// an **M-entry** [`VersionVector`] where Wren carries two scalars. Fig. 7a
/// of the paper is exactly this difference summed over a run.
#[derive(Clone, Debug, PartialEq)]
pub enum CureMsg {
    /// Client → coordinator: begin a transaction, piggybacking the highest
    /// vector the client has observed for snapshot monotonicity.
    StartTxReq {
        /// Client's maximum observed vector.
        seen: VersionVector,
    },
    /// Coordinator → client: the transaction id and its snapshot vector
    /// (the coordinator's stable vector with the local entry bumped to its
    /// current clock — the source of read blocking).
    StartTxResp {
        /// New transaction id.
        tx: TxId,
        /// Snapshot vector assigned to the transaction.
        snapshot: VersionVector,
    },
    /// Client → coordinator: read `keys` within `tx`.
    TxReadReq {
        /// The transaction.
        tx: TxId,
        /// Keys to read.
        keys: Vec<Key>,
    },
    /// Coordinator → client: the versions read.
    TxReadResp {
        /// The transaction.
        tx: TxId,
        /// Per key: the freshest visible version, or `None`.
        items: Vec<(Key, Option<CureVersion>)>,
    },
    /// Client → coordinator: commit the buffered write-set.
    CommitReq {
        /// The transaction.
        tx: TxId,
        /// The write-set.
        writes: Vec<(Key, Value)>,
    },
    /// Coordinator → client: the commit vector (snapshot with the local
    /// entry replaced by the commit timestamp).
    CommitResp {
        /// The transaction.
        tx: TxId,
        /// Commit vector for client-side monotonicity.
        commit_vec: VersionVector,
    },
    /// Coordinator → cohort: serve a read slice at `snapshot`. **May
    /// block** at the cohort until the snapshot is installed.
    SliceReq {
        /// The transaction.
        tx: TxId,
        /// Snapshot vector.
        snapshot: VersionVector,
        /// Keys owned by the cohort.
        keys: Vec<Key>,
    },
    /// Cohort → coordinator: the slice contents (sent once the snapshot is
    /// installed).
    SliceResp {
        /// The transaction.
        tx: TxId,
        /// Per key: the freshest visible version, or `None`.
        items: Vec<(Key, Option<CureVersion>)>,
    },
    /// Coordinator → cohort: 2PC prepare, carrying the snapshot vector
    /// that becomes the items' dependency vector.
    PrepareReq {
        /// The transaction.
        tx: TxId,
        /// Snapshot vector observed by the transaction.
        snapshot: VersionVector,
        /// Writes owned by this cohort.
        writes: Vec<(Key, Value)>,
    },
    /// Cohort → coordinator: proposed commit timestamp.
    PrepareResp {
        /// The transaction.
        tx: TxId,
        /// Proposed timestamp.
        pt: Timestamp,
    },
    /// Coordinator → cohort: final commit timestamp.
    Commit {
        /// The transaction.
        tx: TxId,
        /// Final commit timestamp.
        ct: Timestamp,
    },
    /// Partition → sibling replicas: applied transactions, each carrying
    /// its full dependency vector.
    Replicate {
        /// The batch of transactions.
        batch: CureReplicateBatch,
    },
    /// Partition → sibling replicas: version-clock progress when idle.
    Heartbeat {
        /// Sender's version clock.
        t: Timestamp,
    },
    /// Intra-DC stabilization gossip: the partition's **full version
    /// vector** (M timestamps; contrast with
    /// [`WrenMsg::StableGossip`](crate::WrenMsg::StableGossip)).
    StableGossip {
        /// The partition's version vector.
        vv: VersionVector,
    },
    /// Intra-DC GC gossip: oldest active snapshot vector.
    GcGossip {
        /// Oldest snapshot vector visible to a running transaction.
        oldest: VersionVector,
    },
    /// Tree-structured stabilization: a child's subtree-minimum vector
    /// flowing towards the root — **M timestamps** where Wren's
    /// [`WrenMsg::GossipUp`](crate::WrenMsg::GossipUp) carries two.
    GossipUp {
        /// Entrywise minimum version vector over the sender's subtree.
        vv: VersionVector,
    },
    /// Tree-structured stabilization: the root's global stable vector
    /// flowing down to the leaves.
    GossipDown {
        /// The DC-wide stable vector.
        gsv: VersionVector,
    },
}

const TAG_START_REQ: u8 = 64;
const TAG_START_RESP: u8 = 65;
const TAG_READ_REQ: u8 = 66;
const TAG_READ_RESP: u8 = 67;
const TAG_COMMIT_REQ: u8 = 68;
const TAG_COMMIT_RESP: u8 = 69;
const TAG_SLICE_REQ: u8 = 70;
const TAG_SLICE_RESP: u8 = 71;
const TAG_PREPARE_REQ: u8 = 72;
const TAG_PREPARE_RESP: u8 = 73;
const TAG_COMMIT: u8 = 74;
const TAG_REPLICATE: u8 = 75;
const TAG_HEARTBEAT: u8 = 76;
const TAG_STABLE_GOSSIP: u8 = 77;
const TAG_GC_GOSSIP: u8 = 78;
const TAG_GOSSIP_UP: u8 = 79;
const TAG_GOSSIP_DOWN: u8 = 80;

fn version_size(v: &Option<CureVersion>) -> usize {
    1 + match v {
        None => 0,
        Some(v) => size::value(&v.value) + 8 + size::vv(&v.deps) + 8 + 1,
    }
}

fn put_version(e: &mut Enc, v: &Option<CureVersion>) {
    match v {
        None => e.put_u8(0),
        Some(v) => {
            e.put_u8(1);
            e.put_value(&v.value);
            e.put_ts(v.ut);
            e.put_vv(&v.deps);
            e.put_tx(v.tx);
            e.put_dc(v.sr);
        }
    }
}

fn get_version(d: &mut Dec<'_>) -> Result<Option<CureVersion>, CodecError> {
    if d.get_u8()? == 0 {
        return Ok(None);
    }
    Ok(Some(CureVersion {
        value: d.get_value()?,
        ut: d.get_ts()?,
        deps: d.get_vv()?,
        tx: d.get_tx()?,
        sr: d.get_dc()?,
    }))
}

fn put_writes(e: &mut Enc, writes: &[(Key, Value)]) {
    e.put_len(writes.len());
    for (k, v) in writes {
        e.put_key(*k);
        e.put_value(v);
    }
}

fn get_writes(d: &mut Dec<'_>) -> Result<Vec<(Key, Value)>, CodecError> {
    let n = d.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((d.get_key()?, d.get_value()?));
    }
    Ok(out)
}

fn put_items(e: &mut Enc, items: &[(Key, Option<CureVersion>)]) {
    e.put_len(items.len());
    for (k, v) in items {
        e.put_key(*k);
        put_version(e, v);
    }
}

fn get_items(d: &mut Dec<'_>) -> Result<Vec<(Key, Option<CureVersion>)>, CodecError> {
    let n = d.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((d.get_key()?, get_version(d)?));
    }
    Ok(out)
}

impl CureMsg {
    /// Exact encoded size in bytes (equals `self.encode().len()`).
    pub fn wire_size(&self) -> usize {
        1 + match self {
            CureMsg::StartTxReq { seen } => size::vv(seen),
            CureMsg::StartTxResp { snapshot, .. } => 8 + size::vv(snapshot),
            CureMsg::TxReadReq { keys, .. } => 8 + 2 + 8 * keys.len(),
            CureMsg::TxReadResp { items, .. } | CureMsg::SliceResp { items, .. } => {
                8 + 2 + items.iter().map(|(_, v)| 8 + version_size(v)).sum::<usize>()
            }
            CureMsg::CommitReq { writes, .. } => {
                8 + 2 + writes.iter().map(size::write_pair).sum::<usize>()
            }
            CureMsg::CommitResp { commit_vec, .. } => 8 + size::vv(commit_vec),
            CureMsg::SliceReq { snapshot, keys, .. } => {
                8 + size::vv(snapshot) + 2 + 8 * keys.len()
            }
            CureMsg::PrepareReq { snapshot, writes, .. } => {
                8 + size::vv(snapshot)
                    + 2
                    + writes.iter().map(size::write_pair).sum::<usize>()
            }
            CureMsg::PrepareResp { .. } => 16,
            CureMsg::Commit { .. } => 16,
            CureMsg::Replicate { batch } => {
                8 + 2
                    + batch
                        .txs
                        .iter()
                        .map(|t| {
                            8 + size::vv(&t.deps)
                                + 2
                                + t.writes.iter().map(size::write_pair).sum::<usize>()
                        })
                        .sum::<usize>()
            }
            CureMsg::Heartbeat { .. } => 8,
            CureMsg::StableGossip { vv } => size::vv(vv),
            CureMsg::GcGossip { oldest } => size::vv(oldest),
            CureMsg::GossipUp { vv } => size::vv(vv),
            CureMsg::GossipDown { gsv } => size::vv(gsv),
        }
    }

    /// Encodes to the binary wire format.
    ///
    /// The buffer is preallocated to the exact [`wire_size`]
    /// (which property tests pin to the encoded length), so encoding
    /// never pays a growth realloc.
    ///
    /// [`wire_size`]: CureMsg::wire_size
    pub fn encode(&self) -> Bytes {
        let mut e = Enc::with_capacity(self.wire_size());
        self.encode_into(&mut e);
        e.finish()
    }

    /// Appends the encoding to an existing buffer. The transport frame
    /// path ([`frame`](crate::frame)) uses this to write the length
    /// header and the payload into one preallocated buffer.
    pub fn encode_into(&self, e: &mut Enc) {
        match self {
            CureMsg::StartTxReq { seen } => {
                e.put_u8(TAG_START_REQ);
                e.put_vv(seen);
            }
            CureMsg::StartTxResp { tx, snapshot } => {
                e.put_u8(TAG_START_RESP);
                e.put_tx(*tx);
                e.put_vv(snapshot);
            }
            CureMsg::TxReadReq { tx, keys } => {
                e.put_u8(TAG_READ_REQ);
                e.put_tx(*tx);
                e.put_len(keys.len());
                for k in keys {
                    e.put_key(*k);
                }
            }
            CureMsg::TxReadResp { tx, items } => {
                e.put_u8(TAG_READ_RESP);
                e.put_tx(*tx);
                put_items(e, items);
            }
            CureMsg::CommitReq { tx, writes } => {
                e.put_u8(TAG_COMMIT_REQ);
                e.put_tx(*tx);
                put_writes(e, writes);
            }
            CureMsg::CommitResp { tx, commit_vec } => {
                e.put_u8(TAG_COMMIT_RESP);
                e.put_tx(*tx);
                e.put_vv(commit_vec);
            }
            CureMsg::SliceReq { tx, snapshot, keys } => {
                e.put_u8(TAG_SLICE_REQ);
                e.put_tx(*tx);
                e.put_vv(snapshot);
                e.put_len(keys.len());
                for k in keys {
                    e.put_key(*k);
                }
            }
            CureMsg::SliceResp { tx, items } => {
                e.put_u8(TAG_SLICE_RESP);
                e.put_tx(*tx);
                put_items(e, items);
            }
            CureMsg::PrepareReq {
                tx,
                snapshot,
                writes,
            } => {
                e.put_u8(TAG_PREPARE_REQ);
                e.put_tx(*tx);
                e.put_vv(snapshot);
                put_writes(e, writes);
            }
            CureMsg::PrepareResp { tx, pt } => {
                e.put_u8(TAG_PREPARE_RESP);
                e.put_tx(*tx);
                e.put_ts(*pt);
            }
            CureMsg::Commit { tx, ct } => {
                e.put_u8(TAG_COMMIT);
                e.put_tx(*tx);
                e.put_ts(*ct);
            }
            CureMsg::Replicate { batch } => {
                e.put_u8(TAG_REPLICATE);
                e.put_ts(batch.ct);
                e.put_len(batch.txs.len());
                for t in &batch.txs {
                    e.put_tx(t.tx);
                    e.put_vv(&t.deps);
                    put_writes(e, &t.writes);
                }
            }
            CureMsg::Heartbeat { t } => {
                e.put_u8(TAG_HEARTBEAT);
                e.put_ts(*t);
            }
            CureMsg::StableGossip { vv } => {
                e.put_u8(TAG_STABLE_GOSSIP);
                e.put_vv(vv);
            }
            CureMsg::GcGossip { oldest } => {
                e.put_u8(TAG_GC_GOSSIP);
                e.put_vv(oldest);
            }
            CureMsg::GossipUp { vv } => {
                e.put_u8(TAG_GOSSIP_UP);
                e.put_vv(vv);
            }
            CureMsg::GossipDown { gsv } => {
                e.put_u8(TAG_GOSSIP_DOWN);
                e.put_vv(gsv);
            }
        }
    }

    /// Decodes a message previously produced by [`CureMsg::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input, unknown tags or
    /// trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(bytes);
        let msg = match d.get_u8()? {
            TAG_START_REQ => CureMsg::StartTxReq { seen: d.get_vv()? },
            TAG_START_RESP => CureMsg::StartTxResp {
                tx: d.get_tx()?,
                snapshot: d.get_vv()?,
            },
            TAG_READ_REQ => {
                let tx = d.get_tx()?;
                let n = d.get_len()?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(d.get_key()?);
                }
                CureMsg::TxReadReq { tx, keys }
            }
            TAG_READ_RESP => CureMsg::TxReadResp {
                tx: d.get_tx()?,
                items: get_items(&mut d)?,
            },
            TAG_COMMIT_REQ => CureMsg::CommitReq {
                tx: d.get_tx()?,
                writes: get_writes(&mut d)?,
            },
            TAG_COMMIT_RESP => CureMsg::CommitResp {
                tx: d.get_tx()?,
                commit_vec: d.get_vv()?,
            },
            TAG_SLICE_REQ => {
                let tx = d.get_tx()?;
                let snapshot = d.get_vv()?;
                let n = d.get_len()?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(d.get_key()?);
                }
                CureMsg::SliceReq { tx, snapshot, keys }
            }
            TAG_SLICE_RESP => CureMsg::SliceResp {
                tx: d.get_tx()?,
                items: get_items(&mut d)?,
            },
            TAG_PREPARE_REQ => CureMsg::PrepareReq {
                tx: d.get_tx()?,
                snapshot: d.get_vv()?,
                writes: get_writes(&mut d)?,
            },
            TAG_PREPARE_RESP => CureMsg::PrepareResp {
                tx: d.get_tx()?,
                pt: d.get_ts()?,
            },
            TAG_COMMIT => CureMsg::Commit {
                tx: d.get_tx()?,
                ct: d.get_ts()?,
            },
            TAG_REPLICATE => {
                let ct = d.get_ts()?;
                let n = d.get_len()?;
                let mut txs = Vec::with_capacity(n);
                for _ in 0..n {
                    txs.push(CureRepTx {
                        tx: d.get_tx()?,
                        deps: d.get_vv()?,
                        writes: get_writes(&mut d)?,
                    });
                }
                CureMsg::Replicate {
                    batch: CureReplicateBatch { ct, txs },
                }
            }
            TAG_HEARTBEAT => CureMsg::Heartbeat { t: d.get_ts()? },
            TAG_STABLE_GOSSIP => CureMsg::StableGossip { vv: d.get_vv()? },
            TAG_GC_GOSSIP => CureMsg::GcGossip { oldest: d.get_vv()? },
            TAG_GOSSIP_UP => CureMsg::GossipUp { vv: d.get_vv()? },
            TAG_GOSSIP_DOWN => CureMsg::GossipDown { gsv: d.get_vv()? },
            tag => return Err(CodecError::BadTag(tag)),
        };
        d.expect_end()?;
        Ok(msg)
    }
}

impl Message for CureMsg {
    fn wire_size(&self) -> usize {
        CureMsg::wire_size(self)
    }

    fn category(&self) -> MsgCategory {
        match self {
            CureMsg::StartTxReq { .. }
            | CureMsg::StartTxResp { .. }
            | CureMsg::TxReadReq { .. }
            | CureMsg::TxReadResp { .. }
            | CureMsg::CommitReq { .. }
            | CureMsg::CommitResp { .. } => MsgCategory::ClientServer,
            CureMsg::SliceReq { .. }
            | CureMsg::SliceResp { .. }
            | CureMsg::PrepareReq { .. }
            | CureMsg::PrepareResp { .. }
            | CureMsg::Commit { .. } => MsgCategory::IntraDcTransaction,
            CureMsg::Replicate { .. } => MsgCategory::Replication,
            CureMsg::Heartbeat { .. } => MsgCategory::Heartbeat,
            CureMsg::StableGossip { .. }
            | CureMsg::GossipUp { .. }
            | CureMsg::GossipDown { .. } => MsgCategory::Stabilization,
            CureMsg::GcGossip { .. } => MsgCategory::GarbageCollection,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcId, ServerId};

    fn vv(n: usize) -> VersionVector {
        VersionVector::from_entries(
            (0..n as u64).map(|i| Timestamp::from_micros(i * 10)).collect(),
        )
    }

    fn sample_version(m: usize) -> CureVersion {
        CureVersion {
            value: Bytes::from_static(b"12345678"),
            ut: Timestamp::from_parts(100, 1),
            deps: vv(m),
            tx: TxId::new(ServerId::new(1, 2), 3),
            sr: DcId(1),
        }
    }

    fn samples() -> Vec<CureMsg> {
        let tx = TxId::new(ServerId::new(0, 1), 9);
        vec![
            CureMsg::StartTxReq { seen: vv(3) },
            CureMsg::StartTxResp { tx, snapshot: vv(3) },
            CureMsg::TxReadReq {
                tx,
                keys: vec![Key(1), Key(2)],
            },
            CureMsg::TxReadResp {
                tx,
                items: vec![(Key(1), Some(sample_version(3))), (Key(2), None)],
            },
            CureMsg::CommitReq {
                tx,
                writes: vec![(Key(5), Bytes::from_static(b"abcdefgh"))],
            },
            CureMsg::CommitResp {
                tx,
                commit_vec: vv(3),
            },
            CureMsg::SliceReq {
                tx,
                snapshot: vv(3),
                keys: vec![Key(9)],
            },
            CureMsg::SliceResp {
                tx,
                items: vec![(Key(9), Some(sample_version(5)))],
            },
            CureMsg::PrepareReq {
                tx,
                snapshot: vv(3),
                writes: vec![(Key(5), Bytes::from_static(b"x"))],
            },
            CureMsg::PrepareResp {
                tx,
                pt: Timestamp::from_micros(4),
            },
            CureMsg::Commit {
                tx,
                ct: Timestamp::from_micros(5),
            },
            CureMsg::Replicate {
                batch: CureReplicateBatch {
                    ct: Timestamp::from_micros(10),
                    txs: vec![CureRepTx {
                        tx,
                        deps: vv(5),
                        writes: vec![(Key(1), Bytes::from_static(b"12345678"))],
                    }],
                },
            },
            CureMsg::Heartbeat {
                t: Timestamp::from_micros(11),
            },
            CureMsg::StableGossip { vv: vv(5) },
            CureMsg::GcGossip { oldest: vv(5) },
            CureMsg::GossipUp { vv: vv(4) },
            CureMsg::GossipDown { gsv: vv(4) },
        ]
    }

    #[test]
    fn all_variants_round_trip() {
        for msg in samples() {
            let bytes = msg.encode();
            assert_eq!(CureMsg::decode(&bytes).expect("decodes"), msg);
        }
    }

    #[test]
    fn wire_size_matches_encoding() {
        for msg in samples() {
            assert_eq!(
                msg.encode().len(),
                msg.wire_size(),
                "wire_size mismatch for {msg:?}"
            );
        }
    }

    #[test]
    fn cure_metadata_grows_with_dcs() {
        // The paper: "with 5 DCs, updates, snapshots and stabilization
        // messages carry 2 timestamps in Wren versus 5 in Cure".
        let gossip3 = CureMsg::StableGossip { vv: vv(3) }.wire_size();
        let gossip5 = CureMsg::StableGossip { vv: vv(5) }.wire_size();
        assert_eq!(gossip5 - gossip3, 16, "2 more DCs = 2 more timestamps");
        let wren_gossip = crate::WrenMsg::StableGossip {
            local: Timestamp::ZERO,
            remote: Timestamp::ZERO,
        }
        .wire_size();
        assert!(wren_gossip < gossip3);
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(CureMsg::decode(&[255]), Err(CodecError::BadTag(255)));
    }

    #[test]
    fn categories_cover_all_variants() {
        use wren_sim::Message as _;
        for msg in samples() {
            let _ = msg.category();
        }
        assert_eq!(
            CureMsg::Replicate {
                batch: CureReplicateBatch {
                    ct: Timestamp::ZERO,
                    txs: vec![]
                }
            }
            .category(),
            MsgCategory::Replication
        );
    }
}
