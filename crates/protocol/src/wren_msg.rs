use crate::codec::{size, CodecError, Dec, Enc};
use crate::{Key, RepTx, ReplicateBatch, TxId, Value, WrenVersion};
use bytes::Bytes;
use wren_clock::Timestamp;
use wren_sim::{Message, MsgCategory};

/// All messages of the Wren protocol (Algorithms 1–4 of the paper).
///
/// Naming follows the paper: `StartTxReq/Resp` and `TxReadReq/Resp` flow
/// between a client and its coordinator; `SliceReq/Resp` and the 2PC
/// triple `PrepareReq/PrepareResp/Commit` between the coordinator and the
/// cohort partitions; `Replicate`/`Heartbeat` cross DCs between sibling
/// replicas; `StableGossip` is BiST's **two-scalar** stabilization
/// exchange; `GcGossip` carries the oldest-active-snapshot watermark.
#[derive(Clone, Debug, PartialEq)]
pub enum WrenMsg {
    /// Client → coordinator: begin a transaction, piggybacking the
    /// freshest snapshot the client has seen (Algorithm 1 line 2).
    StartTxReq {
        /// Client's local stable time.
        lst: Timestamp,
        /// Client's remote stable time.
        rst: Timestamp,
    },
    /// Coordinator → client: the transaction id and assigned snapshot
    /// (Algorithm 2 line 6).
    StartTxResp {
        /// New transaction id.
        tx: TxId,
        /// Snapshot local component.
        lst: Timestamp,
        /// Snapshot remote component (`min(rst, lst − 1)`).
        rst: Timestamp,
    },
    /// Client → coordinator: read `keys` within transaction `tx`.
    TxReadReq {
        /// The transaction.
        tx: TxId,
        /// Keys not served by the client's local sets/cache.
        keys: Vec<Key>,
    },
    /// Coordinator → client: the versions read.
    TxReadResp {
        /// The transaction.
        tx: TxId,
        /// Per key: the freshest visible version, or `None`.
        items: Vec<(Key, Option<WrenVersion>)>,
    },
    /// Client → coordinator: commit with the write-set and the client's
    /// highest write time (Algorithm 1 line 27).
    CommitReq {
        /// The transaction.
        tx: TxId,
        /// Commit time of the client's previous update transaction.
        hwt: Timestamp,
        /// The buffered write-set.
        writes: Vec<(Key, Value)>,
    },
    /// Coordinator → client: the commit timestamp (Algorithm 2 line 28).
    CommitResp {
        /// The transaction.
        tx: TxId,
        /// Assigned commit timestamp.
        ct: Timestamp,
    },
    /// Coordinator → cohort: serve a read slice at snapshot `(lt, rt)`
    /// (Algorithm 2 line 12).
    SliceReq {
        /// The transaction.
        tx: TxId,
        /// Snapshot local component.
        lt: Timestamp,
        /// Snapshot remote component.
        rt: Timestamp,
        /// Keys owned by the cohort.
        keys: Vec<Key>,
    },
    /// Cohort → coordinator: the slice contents (Algorithm 3 line 12).
    SliceResp {
        /// The transaction.
        tx: TxId,
        /// Per key: the freshest visible version, or `None`.
        items: Vec<(Key, Option<WrenVersion>)>,
    },
    /// Coordinator → cohort: 2PC prepare (Algorithm 2 line 22).
    PrepareReq {
        /// The transaction.
        tx: TxId,
        /// Snapshot local component.
        lt: Timestamp,
        /// Snapshot remote component (becomes the items' `rdt`).
        rt: Timestamp,
        /// Highest timestamp observed by the client (`max(lt, rt, hwt)`).
        ht: Timestamp,
        /// Writes owned by this cohort.
        writes: Vec<(Key, Value)>,
    },
    /// Cohort → coordinator: proposed commit timestamp (Algorithm 3
    /// line 19).
    PrepareResp {
        /// The transaction.
        tx: TxId,
        /// Proposed timestamp from the cohort's HLC.
        pt: Timestamp,
    },
    /// Coordinator → cohort: final commit timestamp (Algorithm 2 line 26).
    Commit {
        /// The transaction.
        tx: TxId,
        /// Final commit timestamp (max of proposals).
        ct: Timestamp,
    },
    /// Partition → sibling replicas in other DCs: applied transactions
    /// sharing commit timestamp `batch.ct` (Algorithm 4 line 14).
    Replicate {
        /// The batch of transactions.
        batch: ReplicateBatch,
    },
    /// Partition → sibling replicas: no transactions committed this tick;
    /// the replica's version clock reached `t` (Algorithm 4 line 20).
    Heartbeat {
        /// Sender's version clock.
        t: Timestamp,
    },
    /// BiST intra-DC gossip: this partition's contribution to the LST/RST
    /// aggregation — exactly **two timestamps** regardless of the number
    /// of DCs (the paper's headline metadata saving).
    StableGossip {
        /// `VV[m]`: the partition's local version clock.
        local: Timestamp,
        /// `min_{i≠m} VV[i]`: its minimum remote entry.
        remote: Timestamp,
    },
    /// Intra-DC GC gossip: the oldest snapshot visible to a transaction
    /// running at the sender.
    GcGossip {
        /// Oldest active local snapshot component.
        oldest_lt: Timestamp,
        /// Oldest active remote snapshot component.
        oldest_rt: Timestamp,
    },
    /// Tree-structured BiST (GentleRain-style, §IV-B "Partitions within a
    /// DC are organized as a tree to reduce communication costs"): a
    /// child's subtree-minimum flowing towards the root. Two timestamps,
    /// like every BiST message.
    GossipUp {
        /// Minimum local version clock over the sender's subtree.
        local: Timestamp,
        /// Minimum remote watermark over the sender's subtree.
        remote: Timestamp,
    },
    /// Tree-structured BiST: the root's computed stable times flowing
    /// down to the leaves.
    GossipDown {
        /// The DC-wide local stable time.
        lst: Timestamp,
        /// The DC-wide remote stable time.
        rst: Timestamp,
    },
    /// Recovered partition → sibling replica: re-send every transaction
    /// you originated with update time above `from` (the recovering
    /// replica's version-vector entry for your DC). The crash-recovery
    /// extension of Algorithm 4's FIFO replication channel: the sibling
    /// answers with ordinary `Replicate` batches and closes with
    /// [`WrenMsg::CatchUpDone`].
    CatchUpReq {
        /// Highest update time of the sender's durable state for the
        /// target's DC.
        from: Timestamp,
    },
    /// Sibling replica → recovered partition: the catch-up re-send is
    /// complete and covered everything up to `t` (the sibling's version
    /// clock); the recovering replica may raise its version-vector
    /// entry to `t` and treat the channel as an ordinary FIFO
    /// replication stream again.
    CatchUpDone {
        /// The sender's version clock at the end of the re-scan.
        t: Timestamp,
    },
}

const TAG_START_REQ: u8 = 0;
const TAG_START_RESP: u8 = 1;
const TAG_READ_REQ: u8 = 2;
const TAG_READ_RESP: u8 = 3;
const TAG_COMMIT_REQ: u8 = 4;
const TAG_COMMIT_RESP: u8 = 5;
const TAG_SLICE_REQ: u8 = 6;
const TAG_SLICE_RESP: u8 = 7;
const TAG_PREPARE_REQ: u8 = 8;
const TAG_PREPARE_RESP: u8 = 9;
const TAG_COMMIT: u8 = 10;
const TAG_REPLICATE: u8 = 11;
const TAG_HEARTBEAT: u8 = 12;
const TAG_STABLE_GOSSIP: u8 = 13;
const TAG_GC_GOSSIP: u8 = 14;
const TAG_GOSSIP_UP: u8 = 15;
const TAG_GOSSIP_DOWN: u8 = 16;
const TAG_CATCH_UP_REQ: u8 = 17;
const TAG_CATCH_UP_DONE: u8 = 18;

fn version_size(v: &Option<WrenVersion>) -> usize {
    1 + match v {
        None => 0,
        Some(v) => size::value(&v.value) + 8 + 8 + 8 + 1,
    }
}

fn put_version(e: &mut Enc, v: &Option<WrenVersion>) {
    match v {
        None => e.put_u8(0),
        Some(v) => {
            e.put_u8(1);
            e.put_value(&v.value);
            e.put_ts(v.ut);
            e.put_ts(v.rdt);
            e.put_tx(v.tx);
            e.put_dc(v.sr);
        }
    }
}

fn get_version(d: &mut Dec<'_>) -> Result<Option<WrenVersion>, CodecError> {
    if d.get_u8()? == 0 {
        return Ok(None);
    }
    Ok(Some(WrenVersion {
        value: d.get_value()?,
        ut: d.get_ts()?,
        rdt: d.get_ts()?,
        tx: d.get_tx()?,
        sr: d.get_dc()?,
    }))
}

fn put_writes(e: &mut Enc, writes: &[(Key, Value)]) {
    e.put_len(writes.len());
    for (k, v) in writes {
        e.put_key(*k);
        e.put_value(v);
    }
}

fn get_writes(d: &mut Dec<'_>) -> Result<Vec<(Key, Value)>, CodecError> {
    let n = d.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((d.get_key()?, d.get_value()?));
    }
    Ok(out)
}

fn put_items(e: &mut Enc, items: &[(Key, Option<WrenVersion>)]) {
    e.put_len(items.len());
    for (k, v) in items {
        e.put_key(*k);
        put_version(e, v);
    }
}

fn get_items(d: &mut Dec<'_>) -> Result<Vec<(Key, Option<WrenVersion>)>, CodecError> {
    let n = d.get_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((d.get_key()?, get_version(d)?));
    }
    Ok(out)
}

impl WrenMsg {
    /// Exact encoded size in bytes (equals `self.encode().len()`).
    pub fn wire_size(&self) -> usize {
        1 + match self {
            WrenMsg::StartTxReq { .. } => 16,
            WrenMsg::StartTxResp { .. } => 24,
            WrenMsg::TxReadReq { keys, .. } => 8 + 2 + 8 * keys.len(),
            WrenMsg::TxReadResp { items, .. } | WrenMsg::SliceResp { items, .. } => {
                8 + 2 + items.iter().map(|(_, v)| 8 + version_size(v)).sum::<usize>()
            }
            WrenMsg::CommitReq { writes, .. } => {
                8 + 8 + 2 + writes.iter().map(size::write_pair).sum::<usize>()
            }
            WrenMsg::CommitResp { .. } => 16,
            WrenMsg::SliceReq { keys, .. } => 8 + 16 + 2 + 8 * keys.len(),
            WrenMsg::PrepareReq { writes, .. } => {
                8 + 24 + 2 + writes.iter().map(size::write_pair).sum::<usize>()
            }
            WrenMsg::PrepareResp { .. } => 16,
            WrenMsg::Commit { .. } => 16,
            WrenMsg::Replicate { batch } => {
                8 + 2
                    + batch
                        .txs
                        .iter()
                        .map(|t| {
                            8 + 8 + 2 + t.writes.iter().map(size::write_pair).sum::<usize>()
                        })
                        .sum::<usize>()
            }
            WrenMsg::Heartbeat { .. } => 8,
            WrenMsg::StableGossip { .. } => 16,
            WrenMsg::GcGossip { .. } => 16,
            WrenMsg::GossipUp { .. } => 16,
            WrenMsg::GossipDown { .. } => 16,
            WrenMsg::CatchUpReq { .. } => 8,
            WrenMsg::CatchUpDone { .. } => 8,
        }
    }

    /// Encodes to the binary wire format.
    ///
    /// The buffer is preallocated to the exact [`wire_size`]
    /// (which property tests pin to the encoded length), so encoding
    /// never pays a growth realloc.
    ///
    /// [`wire_size`]: WrenMsg::wire_size
    pub fn encode(&self) -> Bytes {
        let mut e = Enc::with_capacity(self.wire_size());
        self.encode_into(&mut e);
        e.finish()
    }

    /// Appends the encoding to an existing buffer. The transport frame
    /// path ([`frame`](crate::frame)) uses this to write the length
    /// header and the payload into one preallocated buffer.
    pub fn encode_into(&self, e: &mut Enc) {
        match self {
            WrenMsg::StartTxReq { lst, rst } => {
                e.put_u8(TAG_START_REQ);
                e.put_ts(*lst);
                e.put_ts(*rst);
            }
            WrenMsg::StartTxResp { tx, lst, rst } => {
                e.put_u8(TAG_START_RESP);
                e.put_tx(*tx);
                e.put_ts(*lst);
                e.put_ts(*rst);
            }
            WrenMsg::TxReadReq { tx, keys } => {
                e.put_u8(TAG_READ_REQ);
                e.put_tx(*tx);
                e.put_len(keys.len());
                for k in keys {
                    e.put_key(*k);
                }
            }
            WrenMsg::TxReadResp { tx, items } => {
                e.put_u8(TAG_READ_RESP);
                e.put_tx(*tx);
                put_items(e, items);
            }
            WrenMsg::CommitReq { tx, hwt, writes } => {
                e.put_u8(TAG_COMMIT_REQ);
                e.put_tx(*tx);
                e.put_ts(*hwt);
                put_writes(e, writes);
            }
            WrenMsg::CommitResp { tx, ct } => {
                e.put_u8(TAG_COMMIT_RESP);
                e.put_tx(*tx);
                e.put_ts(*ct);
            }
            WrenMsg::SliceReq { tx, lt, rt, keys } => {
                e.put_u8(TAG_SLICE_REQ);
                e.put_tx(*tx);
                e.put_ts(*lt);
                e.put_ts(*rt);
                e.put_len(keys.len());
                for k in keys {
                    e.put_key(*k);
                }
            }
            WrenMsg::SliceResp { tx, items } => {
                e.put_u8(TAG_SLICE_RESP);
                e.put_tx(*tx);
                put_items(e, items);
            }
            WrenMsg::PrepareReq {
                tx,
                lt,
                rt,
                ht,
                writes,
            } => {
                e.put_u8(TAG_PREPARE_REQ);
                e.put_tx(*tx);
                e.put_ts(*lt);
                e.put_ts(*rt);
                e.put_ts(*ht);
                put_writes(e, writes);
            }
            WrenMsg::PrepareResp { tx, pt } => {
                e.put_u8(TAG_PREPARE_RESP);
                e.put_tx(*tx);
                e.put_ts(*pt);
            }
            WrenMsg::Commit { tx, ct } => {
                e.put_u8(TAG_COMMIT);
                e.put_tx(*tx);
                e.put_ts(*ct);
            }
            WrenMsg::Replicate { batch } => {
                e.put_u8(TAG_REPLICATE);
                e.put_ts(batch.ct);
                e.put_len(batch.txs.len());
                for t in &batch.txs {
                    e.put_tx(t.tx);
                    e.put_ts(t.rst);
                    put_writes(e, &t.writes);
                }
            }
            WrenMsg::Heartbeat { t } => {
                e.put_u8(TAG_HEARTBEAT);
                e.put_ts(*t);
            }
            WrenMsg::StableGossip { local, remote } => {
                e.put_u8(TAG_STABLE_GOSSIP);
                e.put_ts(*local);
                e.put_ts(*remote);
            }
            WrenMsg::GcGossip { oldest_lt, oldest_rt } => {
                e.put_u8(TAG_GC_GOSSIP);
                e.put_ts(*oldest_lt);
                e.put_ts(*oldest_rt);
            }
            WrenMsg::GossipUp { local, remote } => {
                e.put_u8(TAG_GOSSIP_UP);
                e.put_ts(*local);
                e.put_ts(*remote);
            }
            WrenMsg::GossipDown { lst, rst } => {
                e.put_u8(TAG_GOSSIP_DOWN);
                e.put_ts(*lst);
                e.put_ts(*rst);
            }
            WrenMsg::CatchUpReq { from } => {
                e.put_u8(TAG_CATCH_UP_REQ);
                e.put_ts(*from);
            }
            WrenMsg::CatchUpDone { t } => {
                e.put_u8(TAG_CATCH_UP_DONE);
                e.put_ts(*t);
            }
        }
    }

    /// Decodes a message previously produced by [`WrenMsg::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input, unknown tags or
    /// trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(bytes);
        let msg = match d.get_u8()? {
            TAG_START_REQ => WrenMsg::StartTxReq {
                lst: d.get_ts()?,
                rst: d.get_ts()?,
            },
            TAG_START_RESP => WrenMsg::StartTxResp {
                tx: d.get_tx()?,
                lst: d.get_ts()?,
                rst: d.get_ts()?,
            },
            TAG_READ_REQ => {
                let tx = d.get_tx()?;
                let n = d.get_len()?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(d.get_key()?);
                }
                WrenMsg::TxReadReq { tx, keys }
            }
            TAG_READ_RESP => WrenMsg::TxReadResp {
                tx: d.get_tx()?,
                items: get_items(&mut d)?,
            },
            TAG_COMMIT_REQ => WrenMsg::CommitReq {
                tx: d.get_tx()?,
                hwt: d.get_ts()?,
                writes: get_writes(&mut d)?,
            },
            TAG_COMMIT_RESP => WrenMsg::CommitResp {
                tx: d.get_tx()?,
                ct: d.get_ts()?,
            },
            TAG_SLICE_REQ => {
                let tx = d.get_tx()?;
                let lt = d.get_ts()?;
                let rt = d.get_ts()?;
                let n = d.get_len()?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(d.get_key()?);
                }
                WrenMsg::SliceReq { tx, lt, rt, keys }
            }
            TAG_SLICE_RESP => WrenMsg::SliceResp {
                tx: d.get_tx()?,
                items: get_items(&mut d)?,
            },
            TAG_PREPARE_REQ => WrenMsg::PrepareReq {
                tx: d.get_tx()?,
                lt: d.get_ts()?,
                rt: d.get_ts()?,
                ht: d.get_ts()?,
                writes: get_writes(&mut d)?,
            },
            TAG_PREPARE_RESP => WrenMsg::PrepareResp {
                tx: d.get_tx()?,
                pt: d.get_ts()?,
            },
            TAG_COMMIT => WrenMsg::Commit {
                tx: d.get_tx()?,
                ct: d.get_ts()?,
            },
            TAG_REPLICATE => {
                let ct = d.get_ts()?;
                let n = d.get_len()?;
                let mut txs = Vec::with_capacity(n);
                for _ in 0..n {
                    txs.push(RepTx {
                        tx: d.get_tx()?,
                        rst: d.get_ts()?,
                        writes: get_writes(&mut d)?,
                    });
                }
                WrenMsg::Replicate {
                    batch: ReplicateBatch { ct, txs },
                }
            }
            TAG_HEARTBEAT => WrenMsg::Heartbeat { t: d.get_ts()? },
            TAG_STABLE_GOSSIP => WrenMsg::StableGossip {
                local: d.get_ts()?,
                remote: d.get_ts()?,
            },
            TAG_GC_GOSSIP => WrenMsg::GcGossip {
                oldest_lt: d.get_ts()?,
                oldest_rt: d.get_ts()?,
            },
            TAG_GOSSIP_UP => WrenMsg::GossipUp {
                local: d.get_ts()?,
                remote: d.get_ts()?,
            },
            TAG_GOSSIP_DOWN => WrenMsg::GossipDown {
                lst: d.get_ts()?,
                rst: d.get_ts()?,
            },
            TAG_CATCH_UP_REQ => WrenMsg::CatchUpReq { from: d.get_ts()? },
            TAG_CATCH_UP_DONE => WrenMsg::CatchUpDone { t: d.get_ts()? },
            tag => return Err(CodecError::BadTag(tag)),
        };
        d.expect_end()?;
        Ok(msg)
    }
}

impl Message for WrenMsg {
    fn wire_size(&self) -> usize {
        WrenMsg::wire_size(self)
    }

    fn category(&self) -> MsgCategory {
        match self {
            WrenMsg::StartTxReq { .. }
            | WrenMsg::StartTxResp { .. }
            | WrenMsg::TxReadReq { .. }
            | WrenMsg::TxReadResp { .. }
            | WrenMsg::CommitReq { .. }
            | WrenMsg::CommitResp { .. } => MsgCategory::ClientServer,
            WrenMsg::SliceReq { .. }
            | WrenMsg::SliceResp { .. }
            | WrenMsg::PrepareReq { .. }
            | WrenMsg::PrepareResp { .. }
            | WrenMsg::Commit { .. } => MsgCategory::IntraDcTransaction,
            WrenMsg::Replicate { .. }
            | WrenMsg::CatchUpReq { .. }
            | WrenMsg::CatchUpDone { .. } => MsgCategory::Replication,
            WrenMsg::Heartbeat { .. } => MsgCategory::Heartbeat,
            WrenMsg::StableGossip { .. }
            | WrenMsg::GossipUp { .. }
            | WrenMsg::GossipDown { .. } => MsgCategory::Stabilization,
            WrenMsg::GcGossip { .. } => MsgCategory::GarbageCollection,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcId, ServerId};

    fn sample_version() -> WrenVersion {
        WrenVersion {
            value: Bytes::from_static(b"12345678"),
            ut: Timestamp::from_parts(100, 1),
            rdt: Timestamp::from_parts(50, 0),
            tx: TxId::new(ServerId::new(1, 2), 3),
            sr: DcId(1),
        }
    }

    fn samples() -> Vec<WrenMsg> {
        vec![
            WrenMsg::StartTxReq {
                lst: Timestamp::from_micros(1),
                rst: Timestamp::from_micros(2),
            },
            WrenMsg::StartTxResp {
                tx: TxId::new(ServerId::new(0, 1), 9),
                lst: Timestamp::from_micros(1),
                rst: Timestamp::from_micros(2),
            },
            WrenMsg::TxReadReq {
                tx: TxId::new(ServerId::new(0, 1), 9),
                keys: vec![Key(1), Key(2), Key(3)],
            },
            WrenMsg::TxReadResp {
                tx: TxId::new(ServerId::new(0, 1), 9),
                items: vec![(Key(1), Some(sample_version())), (Key(2), None)],
            },
            WrenMsg::CommitReq {
                tx: TxId::new(ServerId::new(0, 1), 9),
                hwt: Timestamp::from_micros(77),
                writes: vec![(Key(5), Bytes::from_static(b"abcdefgh"))],
            },
            WrenMsg::CommitResp {
                tx: TxId::new(ServerId::new(0, 1), 9),
                ct: Timestamp::from_micros(88),
            },
            WrenMsg::SliceReq {
                tx: TxId::new(ServerId::new(0, 1), 9),
                lt: Timestamp::from_micros(1),
                rt: Timestamp::from_micros(2),
                keys: vec![Key(9)],
            },
            WrenMsg::SliceResp {
                tx: TxId::new(ServerId::new(0, 1), 9),
                items: vec![(Key(9), Some(sample_version()))],
            },
            WrenMsg::PrepareReq {
                tx: TxId::new(ServerId::new(0, 1), 9),
                lt: Timestamp::from_micros(1),
                rt: Timestamp::from_micros(2),
                ht: Timestamp::from_micros(3),
                writes: vec![(Key(5), Bytes::from_static(b"x"))],
            },
            WrenMsg::PrepareResp {
                tx: TxId::new(ServerId::new(0, 1), 9),
                pt: Timestamp::from_micros(4),
            },
            WrenMsg::Commit {
                tx: TxId::new(ServerId::new(0, 1), 9),
                ct: Timestamp::from_micros(5),
            },
            WrenMsg::Replicate {
                batch: ReplicateBatch {
                    ct: Timestamp::from_micros(10),
                    txs: vec![RepTx {
                        tx: TxId::new(ServerId::new(0, 1), 9),
                        rst: Timestamp::from_micros(6),
                        writes: vec![(Key(1), Bytes::from_static(b"12345678"))],
                    }],
                },
            },
            WrenMsg::Heartbeat {
                t: Timestamp::from_micros(11),
            },
            WrenMsg::StableGossip {
                local: Timestamp::from_micros(12),
                remote: Timestamp::from_micros(13),
            },
            WrenMsg::GcGossip {
                oldest_lt: Timestamp::from_micros(14),
                oldest_rt: Timestamp::from_micros(15),
            },
            WrenMsg::GossipUp {
                local: Timestamp::from_micros(16),
                remote: Timestamp::from_micros(17),
            },
            WrenMsg::GossipDown {
                lst: Timestamp::from_micros(18),
                rst: Timestamp::from_micros(19),
            },
            WrenMsg::CatchUpReq {
                from: Timestamp::from_micros(20),
            },
            WrenMsg::CatchUpDone {
                t: Timestamp::from_micros(21),
            },
        ]
    }

    #[test]
    fn all_variants_round_trip() {
        for msg in samples() {
            let bytes = msg.encode();
            let back = WrenMsg::decode(&bytes).expect("decodes");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn wire_size_matches_encoding() {
        for msg in samples() {
            assert_eq!(
                msg.encode().len(),
                msg.wire_size(),
                "wire_size mismatch for {msg:?}"
            );
        }
    }

    #[test]
    fn replication_metadata_is_two_timestamps_per_tx() {
        // An empty-writes RepTx should cost: tx id (8) + rst (8) + count (2).
        // Together with the batch ct, that is the "2 timestamps per update"
        // claim of the paper.
        let msg = WrenMsg::Replicate {
            batch: ReplicateBatch {
                ct: Timestamp::from_micros(10),
                txs: vec![RepTx {
                    tx: TxId::new(ServerId::new(0, 1), 9),
                    rst: Timestamp::from_micros(6),
                    writes: vec![],
                }],
            },
        };
        // 1 tag + 8 ct + 2 count + (8 tx + 8 rst + 2 count)
        assert_eq!(msg.wire_size(), 1 + 8 + 2 + 18);
    }

    #[test]
    fn stable_gossip_is_two_timestamps() {
        let msg = WrenMsg::StableGossip {
            local: Timestamp::ZERO,
            remote: Timestamp::ZERO,
        };
        assert_eq!(msg.wire_size(), 17);
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(WrenMsg::decode(&[200]), Err(CodecError::BadTag(200)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = WrenMsg::Heartbeat {
            t: Timestamp::ZERO,
        }
        .encode()
        .to_vec();
        bytes.push(0);
        assert_eq!(WrenMsg::decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn categories_are_assigned() {
        use wren_sim::Message as _;
        assert_eq!(
            WrenMsg::Heartbeat { t: Timestamp::ZERO }.category(),
            MsgCategory::Heartbeat
        );
        assert_eq!(
            WrenMsg::StableGossip {
                local: Timestamp::ZERO,
                remote: Timestamp::ZERO
            }
            .category(),
            MsgCategory::Stabilization
        );
        for msg in samples() {
            let _ = msg.category(); // every variant maps to a category
        }
    }
}
