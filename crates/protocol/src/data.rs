use crate::{DcId, PartitionId, TxId};
use bytes::Bytes;
use wren_clock::{Timestamp, VersionVector};
use wren_storage::Versioned;

/// A key in the data store.
///
/// Keys are 64-bit identifiers; [`Key::partition`] gives the deterministic
/// key → partition assignment the paper assumes ("each key is
/// deterministically assigned to one partition by a hash function",
/// §II-A).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Key(pub u64);

impl Key {
    /// The partition this key belongs to, among `n_partitions`.
    ///
    /// Uses a Fibonacci-hash spread so consecutive key ids do not all land
    /// on consecutive partitions.
    #[inline]
    pub fn partition(self, n_partitions: u16) -> PartitionId {
        let spread = self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        PartitionId((spread % n_partitions as u64) as u16)
    }
}

/// A value: an immutable byte string (the paper's workloads use 8-byte
/// items).
pub type Value = Bytes;

/// A fully-tagged Wren item version: the paper's tuple
/// `⟨k, v, ut, rdt, id_T, sr⟩` minus the key (stored as the chain's map
/// key).
///
/// This is BDT in concrete form — exactly **two scalar timestamps** of
/// causality metadata per version:
///
/// * [`ut`](WrenVersion::ut) — the commit timestamp, which summarizes
///   dependencies on items of the *origin* DC;
/// * [`rdt`](WrenVersion::rdt) — the remote dependency time, summarizing
///   dependencies on items of all *other* DCs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrenVersion {
    /// The written value.
    pub value: Value,
    /// Commit (update) timestamp; summarizes local dependencies.
    pub ut: Timestamp,
    /// Remote dependency time; summarizes remote dependencies.
    pub rdt: Timestamp,
    /// The transaction that wrote this version.
    pub tx: TxId,
    /// Source replica: the DC where the write was issued.
    pub sr: DcId,
}

impl Versioned for WrenVersion {
    fn order_key(&self) -> (Timestamp, u8, u64) {
        (self.ut, self.sr.0, self.tx.raw())
    }

    fn remote_dep(&self) -> Timestamp {
        self.rdt
    }
}

/// A Cure item version: value plus an **M-entry dependency vector**.
///
/// The vector is the update's commit vector: entry `sr` holds the commit
/// timestamp, the other entries the snapshot the writing transaction
/// observed. Its size grows with the number of DCs — the overhead Wren's
/// BDT eliminates and Fig. 7a quantifies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CureVersion {
    /// The written value.
    pub value: Value,
    /// Commit timestamp (equals `deps[sr]`).
    pub ut: Timestamp,
    /// Commit vector: one entry per DC.
    pub deps: VersionVector,
    /// The transaction that wrote this version.
    pub tx: TxId,
    /// Source replica: the DC where the write was issued.
    pub sr: DcId,
}

impl Versioned for CureVersion {
    fn order_key(&self) -> (Timestamp, u8, u64) {
        (self.ut, self.sr.0, self.tx.raw())
    }
}

/// One transaction inside a replication batch (Wren).
///
/// Carries the two BDT timestamps implicitly: the batch's commit timestamp
/// `ct` (shared by every transaction in the batch) and this transaction's
/// remote dependency time `rst`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepTx {
    /// The replicated transaction's id.
    pub tx: TxId,
    /// Its remote dependency time (snapshot `rt` at commit).
    pub rst: Timestamp,
    /// The written key/value pairs owned by this partition.
    pub writes: Vec<(Key, Value)>,
}

/// A Wren replication message body: all transactions that committed at
/// `ct` on the sending partition, packed together (Algorithm 4 lines
/// 10–17).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicateBatch {
    /// The shared commit timestamp.
    pub ct: Timestamp,
    /// The transactions, in commit order.
    pub txs: Vec<RepTx>,
}

/// One transaction inside a Cure replication batch: the dependency vector
/// travels with every transaction (M timestamps of metadata).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CureRepTx {
    /// The replicated transaction's id.
    pub tx: TxId,
    /// Its full commit vector.
    pub deps: VersionVector,
    /// The written key/value pairs owned by this partition.
    pub writes: Vec<(Key, Value)>,
}

/// A Cure replication message body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CureReplicateBatch {
    /// The shared commit timestamp.
    pub ct: Timestamp,
    /// The transactions, in commit order.
    pub txs: Vec<CureRepTx>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerId;

    #[test]
    fn key_partition_is_deterministic_and_in_range() {
        for k in 0..1_000u64 {
            let p = Key(k).partition(8);
            assert!(p.0 < 8);
            assert_eq!(p, Key(k).partition(8));
        }
    }

    #[test]
    fn key_partition_spreads() {
        let mut counts = [0usize; 4];
        for k in 0..4_000u64 {
            counts[Key(k).partition(4).index()] += 1;
        }
        for c in counts {
            assert!(c > 700, "partition got too few keys: {counts:?}");
        }
    }

    #[test]
    fn wren_version_orders_by_lww() {
        let a = WrenVersion {
            value: Bytes::from_static(b"a"),
            ut: Timestamp::from_micros(10),
            rdt: Timestamp::ZERO,
            tx: TxId::new(ServerId::new(0, 0), 1),
            sr: DcId(0),
        };
        let mut b = a.clone();
        b.sr = DcId(1);
        assert!(b.order_key() > a.order_key(), "DC id breaks timestamp ties");
        let mut c = a.clone();
        c.ut = Timestamp::from_micros(11);
        assert!(c.order_key() > b.order_key(), "timestamp dominates");
    }

    #[test]
    fn cure_version_orders_like_wren() {
        let mk = |ut: u64, sr: u8, seq: u64| CureVersion {
            value: Bytes::new(),
            ut: Timestamp::from_micros(ut),
            deps: VersionVector::new(3),
            tx: TxId::new(ServerId::new(sr, 0), seq),
            sr: DcId(sr),
        };
        assert!(mk(10, 1, 0).order_key() > mk(10, 0, 9).order_key());
        assert!(mk(11, 0, 0).order_key() > mk(10, 1, 9).order_key());
    }
}
