//! Length-prefixed framing: how codec messages travel over a byte
//! stream.
//!
//! TCP delivers an undelimited byte stream; the codec
//! ([`WrenMsg::decode`]) needs exact message boundaries (it rejects
//! trailing bytes). A frame restores the boundary: a 4-byte
//! little-endian payload length followed by exactly that many payload
//! bytes (one encoded message). Because every message knows its exact
//! [`wire_size`](WrenMsg::wire_size), the frame writer preallocates a
//! single buffer for header + payload and encodes straight into it —
//! one allocation, one `write` per message.
//!
//! Decoding is incremental and split-agnostic: [`FrameDecoder`]
//! accumulates whatever byte chunks the socket produces (a dribbling
//! client may deliver one byte at a time; a fast one may deliver ten
//! frames in one read) and yields complete payloads as they close.
//! A length prefix above [`MAX_FRAME_LEN`] fails immediately — before
//! any allocation — so a malicious or corrupt peer cannot make the
//! receiver buffer unbounded garbage.

use crate::codec::Enc;
use crate::{CureMsg, WrenMsg};
use bytes::Bytes;
use std::fmt;

/// Bytes in a frame header (the little-endian `u32` payload length).
pub const FRAME_HEADER_LEN: usize = 4;

/// Default ceiling on a frame's payload length.
///
/// Small enough that a corrupt length prefix cannot commit the
/// receiver to buffering gigabytes, yet roomy for real traffic: ~1000
/// max-size (64 KiB) values in one response, or millions of
/// normal-size items. The codec's own caps (64 KiB values, `u16::MAX`
/// collection lengths) still admit pathological messages beyond ANY
/// fixed ceiling (65 535 × 64 KiB ≈ 4 GiB), which is why the encode
/// side has the non-panicking [`try_frame_wren`] for transport use —
/// an oversized message is refused at the sender, mirroring the
/// receiver's guard, instead of trusting workloads to stay sane.
///
/// This is the **one** size-guard constant for length-prefixed byte
/// containers: it aliases [`wren_storage::MAX_RECORD_LEN`], so a WAL
/// record and a wire frame share the identical ceiling and both sides
/// reject an announced length before buffering a byte of payload.
pub const MAX_FRAME_LEN: usize = wren_storage::MAX_RECORD_LEN;

/// Errors produced while reassembling frames from a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A header announced a payload longer than the decoder's maximum.
    TooLarge {
        /// The announced payload length.
        len: usize,
        /// The decoder's configured ceiling.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes a [`WrenMsg`] directly into a single framed buffer
/// (header + payload, preallocated to `4 + wire_size()`), or `None` if
/// the message exceeds [`MAX_FRAME_LEN`] (the receiver would reject
/// the frame anyway — refusing at the sender keeps the failure local
/// to the one oversized message instead of panicking the thread).
pub fn try_frame_wren(msg: &WrenMsg) -> Option<Bytes> {
    let n = msg.wire_size();
    if n > MAX_FRAME_LEN {
        return None;
    }
    let mut e = Enc::with_capacity(FRAME_HEADER_LEN + n);
    e.put_u32(n as u32);
    msg.encode_into(&mut e);
    Some(e.finish())
}

/// Like [`try_frame_wren`], panicking on an oversized message. For
/// callers whose messages are size-bounded by construction (tests,
/// benches); transports use the `try_` form.
///
/// # Panics
///
/// Panics if the encoded message would exceed [`MAX_FRAME_LEN`].
pub fn frame_wren(msg: &WrenMsg) -> Bytes {
    try_frame_wren(msg).expect("message too large to frame")
}

/// Encodes a [`CureMsg`] directly into a single framed buffer, or
/// `None` if it exceeds [`MAX_FRAME_LEN`].
pub fn try_frame_cure(msg: &CureMsg) -> Option<Bytes> {
    let n = msg.wire_size();
    if n > MAX_FRAME_LEN {
        return None;
    }
    let mut e = Enc::with_capacity(FRAME_HEADER_LEN + n);
    e.put_u32(n as u32);
    msg.encode_into(&mut e);
    Some(e.finish())
}

/// Like [`try_frame_cure`], panicking on an oversized message.
///
/// # Panics
///
/// Panics if the encoded message would exceed [`MAX_FRAME_LEN`].
pub fn frame_cure(msg: &CureMsg) -> Bytes {
    try_frame_cure(msg).expect("message too large to frame")
}

/// Incremental frame reassembler: feed it byte chunks in arrival order
/// ([`extend`](Self::extend)), drain complete payloads
/// ([`next_frame`](Self::next_frame)).
///
/// The decoder is transport-agnostic (it never touches a socket) and
/// indifferent to chunk boundaries: bytes may arrive one at a time or
/// many frames at once, and the reassembled payloads are identical —
/// the frame property tests split encodings at every boundary to pin
/// this down.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames.
    start: usize,
    max_len: usize,
}

/// Consumed-prefix length beyond which the buffer is compacted.
const COMPACT_THRESHOLD: usize = 64 * 1024;

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// A decoder with the default [`MAX_FRAME_LEN`] ceiling.
    pub fn new() -> Self {
        FrameDecoder::with_max_len(MAX_FRAME_LEN)
    }

    /// A decoder with a custom payload ceiling (tests use tiny ones).
    pub fn with_max_len(max_len: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_len,
        }
    }

    /// Appends a chunk of received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete payload, `Ok(None)` if more bytes are
    /// needed, or an error if the pending header announces an oversized
    /// frame. After an error the decoder is poisoned in place (the bad
    /// header stays at the front); callers drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        let avail = self.buf.len() - self.start;
        if avail < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; FRAME_HEADER_LEN] = self.buf[self.start..self.start + FRAME_HEADER_LEN]
            .try_into()
            .expect("header length");
        let len = u32::from_le_bytes(header) as usize;
        if len > self.max_len {
            return Err(FrameError::TooLarge {
                len,
                max: self.max_len,
            });
        }
        if avail < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let body_start = self.start + FRAME_HEADER_LEN;
        let frame = Bytes::copy_from_slice(&self.buf[body_start..body_start + len]);
        self.start = body_start + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }

    /// True if bytes of an incomplete frame are pending — a connection
    /// that closes in this state was truncated mid-frame.
    pub fn has_partial(&self) -> bool {
        self.buf.len() > self.start
    }

    /// Bytes buffered but not yet yielded.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wren_clock::Timestamp;

    #[test]
    fn frame_round_trips_whole() {
        let msg = WrenMsg::Heartbeat {
            t: Timestamp::from_micros(9),
        };
        let framed = frame_wren(&msg);
        assert_eq!(framed.len(), FRAME_HEADER_LEN + msg.wire_size());

        let mut dec = FrameDecoder::new();
        dec.extend(&framed);
        let payload = dec.next_frame().unwrap().expect("complete frame");
        assert_eq!(WrenMsg::decode(&payload).unwrap(), msg);
        assert!(!dec.has_partial());
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn frame_round_trips_byte_at_a_time() {
        let msg = WrenMsg::StartTxResp {
            tx: crate::TxId::new(crate::ServerId::new(0, 1), 7),
            lst: Timestamp::from_micros(3),
            rst: Timestamp::from_micros(2),
        };
        let framed = frame_wren(&msg);
        let mut dec = FrameDecoder::new();
        let mut yielded = None;
        for (i, b) in framed.as_slice().iter().enumerate() {
            dec.extend(std::slice::from_ref(b));
            if let Some(p) = dec.next_frame().unwrap() {
                assert_eq!(i, framed.len() - 1, "must only complete on the last byte");
                yielded = Some(p);
            }
        }
        assert_eq!(WrenMsg::decode(&yielded.unwrap()).unwrap(), msg);
    }

    #[test]
    fn several_frames_in_one_chunk() {
        let msgs: Vec<WrenMsg> = (0..5)
            .map(|i| WrenMsg::Heartbeat {
                t: Timestamp::from_micros(i),
            })
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&frame_wren(m));
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        for m in &msgs {
            let p = dec.next_frame().unwrap().expect("frame");
            assert_eq!(&WrenMsg::decode(&p).unwrap(), m);
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_header_is_rejected_before_buffering() {
        let mut dec = FrameDecoder::with_max_len(16);
        dec.extend(&1024u32.to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::TooLarge { len: 1024, max: 16 })
        );
    }

    #[test]
    fn partial_frame_is_reported() {
        let framed = frame_wren(&WrenMsg::Heartbeat {
            t: Timestamp::ZERO,
        });
        let mut dec = FrameDecoder::new();
        dec.extend(&framed[..framed.len() - 1]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.has_partial());
        assert_eq!(dec.pending_bytes(), framed.len() - 1);
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = FrameError::TooLarge { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }
}
