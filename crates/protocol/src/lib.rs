//! Data model, messages and wire codec for the Wren reproduction.
//!
//! This crate defines everything the protocol crates share:
//!
//! * **Identifiers** — [`DcId`], [`PartitionId`], [`ServerId`],
//!   [`ClientId`], [`TxId`], plus the symbolic addressing types
//!   ([`Dest`], [`Outgoing`]) that keep the state machines transport-
//!   agnostic;
//! * **Data** — [`Key`], [`Value`], and the per-version metadata of both
//!   systems: [`WrenVersion`] (BDT: two scalar timestamps) and
//!   [`CureVersion`] (an M-entry dependency vector);
//! * **Messages** — [`WrenMsg`] and [`CureMsg`], mirroring Algorithms 1–4
//!   of the paper and the Cure baseline;
//! * **Codec** — a compact binary encoding ([`codec`]) whose sizes are
//!   exact, so the Fig. 7a bytes-on-the-wire comparison is measured, not
//!   estimated;
//! * **Framing** — length-prefixed frames ([`frame`]) that carry the
//!   codec over byte streams (TCP), with an incremental, split-agnostic
//!   [`frame::FrameDecoder`] and an explicit max-frame-size guard.
//!
//! # Example
//!
//! ```
//! use wren_protocol::{Key, WrenMsg};
//! use wren_clock::Timestamp;
//!
//! let msg = WrenMsg::SliceReq {
//!     tx: wren_protocol::TxId::new(wren_protocol::ServerId::new(0, 3), 1),
//!     lt: Timestamp::from_micros(10),
//!     rt: Timestamp::from_micros(5),
//!     keys: vec![Key(42)],
//! };
//! let bytes = msg.encode();
//! assert_eq!(bytes.len(), msg.wire_size());
//! assert_eq!(WrenMsg::decode(&bytes).unwrap(), msg);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod cure_msg;
mod data;
pub mod frame;
mod ids;
mod wren_msg;

pub use cure_msg::CureMsg;
pub use data::{
    CureRepTx, CureReplicateBatch, CureVersion, Key, RepTx, ReplicateBatch, Value, WrenVersion,
};
pub use ids::{ClientId, DcId, Dest, Outgoing, PartitionId, ServerId, TxId};
pub use wren_msg::WrenMsg;
