use std::fmt;

/// Identifies a data center (replication site). The paper deploys up to 5.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DcId(pub u8);

impl DcId {
    /// The numeric index of this DC.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dc{}", self.0)
    }
}

impl fmt::Display for DcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifies a partition (shard) within a DC. The paper uses up to 16.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartitionId(pub u16);

impl PartitionId {
    /// The numeric index of this partition.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a server process: the replica of partition `partition` in DC
/// `dc` (the paper's `p_n^m`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId {
    /// Which DC this replica lives in (`m`).
    pub dc: DcId,
    /// Which partition it serves (`n`).
    pub partition: PartitionId,
}

impl ServerId {
    /// Builds a server id from DC and partition indices.
    pub const fn new(dc: u8, partition: u16) -> Self {
        ServerId {
            dc: DcId(dc),
            partition: PartitionId(partition),
        }
    }

    /// This server's position in DC-major partition order — the layout
    /// of every per-server table in the runtime (writer inboxes, read
    /// channels, TCP listener addresses).
    pub const fn dc_major_index(self, n_partitions: u16) -> usize {
        self.dc.index() * n_partitions as usize + self.partition.index()
    }
}

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}^{}", self.partition.0, self.dc.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifies a client session (one closed-loop thread in the evaluation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u32);

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A transaction identifier, unique across the whole system.
///
/// The coordinator generates it (Algorithm 2 line 4) by packing its DC id
/// (8 bits), its partition id (16 bits) and a local sequence number
/// (40 bits), so ids never collide across coordinators and also serve as
/// the last-writer-wins tie-breaker the paper prescribes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxId(u64);

impl TxId {
    /// Packs a transaction id from its coordinator and a local sequence
    /// number.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `seq` does not fit in 40 bits.
    pub fn new(coordinator: ServerId, seq: u64) -> Self {
        debug_assert!(seq < (1 << 40), "tx sequence overflows 40 bits");
        TxId(
            ((coordinator.dc.0 as u64) << 56)
                | ((coordinator.partition.0 as u64) << 40)
                | seq,
        )
    }

    /// Rebuilds a transaction id from its raw wire representation.
    pub const fn from_raw(raw: u64) -> Self {
        TxId(raw)
    }

    /// The raw 64-bit representation.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The DC of the coordinator that created this transaction.
    pub const fn dc(self) -> DcId {
        DcId((self.0 >> 56) as u8)
    }

    /// The coordinator partition.
    pub const fn partition(self) -> PartitionId {
        PartitionId(((self.0 >> 40) & 0xFFFF) as u16)
    }

    /// The coordinator-local sequence number.
    pub const fn seq(self) -> u64 {
        self.0 & ((1 << 40) - 1)
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}:{}/{}", self.dc().0, self.partition().0, self.seq())
    }
}

/// Where a protocol message should be delivered.
///
/// The sans-io state machines address peers symbolically; each driver
/// (simulator, threaded runtime) maps these to its own transport endpoints.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dest {
    /// A partition server.
    Server(ServerId),
    /// A client session.
    Client(ClientId),
}

/// A message paired with its destination, as emitted by a state machine.
#[derive(Clone, Debug)]
pub struct Outgoing<M> {
    /// Where to deliver the message.
    pub to: Dest,
    /// The message itself.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Convenience constructor for a server-bound message.
    pub fn to_server(to: ServerId, msg: M) -> Self {
        Outgoing {
            to: Dest::Server(to),
            msg,
        }
    }

    /// Convenience constructor for a client-bound message.
    pub fn to_client(to: ClientId, msg: M) -> Self {
        Outgoing {
            to: Dest::Client(to),
            msg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_id_packs_and_unpacks() {
        let coord = ServerId::new(3, 12);
        let tx = TxId::new(coord, 99_999);
        assert_eq!(tx.dc(), DcId(3));
        assert_eq!(tx.partition(), PartitionId(12));
        assert_eq!(tx.seq(), 99_999);
        assert_eq!(TxId::from_raw(tx.raw()), tx);
    }

    #[test]
    fn tx_ids_from_different_coordinators_differ() {
        let a = TxId::new(ServerId::new(0, 1), 7);
        let b = TxId::new(ServerId::new(1, 1), 7);
        let c = TxId::new(ServerId::new(0, 2), 7);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn ids_format_readably() {
        assert_eq!(format!("{}", DcId(2)), "dc2");
        assert_eq!(format!("{}", PartitionId(5)), "p5");
        assert_eq!(format!("{}", ServerId::new(1, 4)), "p4^1");
        assert_eq!(format!("{}", ClientId(8)), "c8");
        let tx = TxId::new(ServerId::new(1, 4), 2);
        assert_eq!(format!("{:?}", tx), "tx1:4/2");
    }

    #[test]
    fn outgoing_constructors() {
        let o = Outgoing::to_server(ServerId::new(0, 0), 42u32);
        assert_eq!(o.to, Dest::Server(ServerId::new(0, 0)));
        let o = Outgoing::to_client(ClientId(1), 42u32);
        assert_eq!(o.to, Dest::Client(ClientId(1)));
    }
}
