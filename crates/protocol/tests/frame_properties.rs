//! Framing fuzz suite: encode → frame → split the byte stream at
//! arbitrary boundaries → reassemble → decode must be the identity, for
//! both protocols' messages; and malformed, truncated or oversized
//! frames must surface as errors, never panics.
//!
//! This is the evidence behind putting the codec on TCP: a socket
//! delivers chunks at boundaries the sender never chose, and a hostile
//! peer can deliver anything at all.

mod arb;

use arb::{arb_cure_msg, arb_wren_msg};
use proptest::prelude::*;
use wren_protocol::frame::{
    frame_cure, frame_wren, FrameDecoder, FrameError, FRAME_HEADER_LEN, MAX_FRAME_LEN,
};
use wren_protocol::{CureMsg, WrenMsg};

/// Feeds `wire` into a decoder in chunks cut by `splits` (cycled), and
/// returns every payload yielded. Panics inside count as test failures.
fn reassemble(wire: &[u8], splits: &[usize]) -> Result<Vec<Vec<u8>>, FrameError> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut pos = 0;
    let mut split_idx = 0;
    while pos < wire.len() {
        let step = if splits.is_empty() {
            wire.len()
        } else {
            splits[split_idx % splits.len()].max(1)
        };
        split_idx += 1;
        let end = (pos + step).min(wire.len());
        dec.extend(&wire[pos..end]);
        pos = end;
        while let Some(payload) = dec.next_frame()? {
            out.push(payload.to_vec());
        }
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One Wren message through any chunking of its framed bytes.
    #[test]
    fn wren_frames_survive_arbitrary_splits(
        msg in arb_wren_msg(),
        splits in proptest::collection::vec(1usize..48, 0..16),
    ) {
        let framed = frame_wren(&msg);
        prop_assert_eq!(framed.len(), FRAME_HEADER_LEN + msg.wire_size());
        let payloads = reassemble(&framed, &splits).expect("well-formed stream");
        prop_assert_eq!(payloads.len(), 1);
        prop_assert_eq!(WrenMsg::decode(&payloads[0]).expect("decodes"), msg);
    }

    /// One Cure message through any chunking of its framed bytes.
    #[test]
    fn cure_frames_survive_arbitrary_splits(
        msg in arb_cure_msg(),
        splits in proptest::collection::vec(1usize..48, 0..16),
    ) {
        let framed = frame_cure(&msg);
        prop_assert_eq!(framed.len(), FRAME_HEADER_LEN + msg.wire_size());
        let payloads = reassemble(&framed, &splits).expect("well-formed stream");
        prop_assert_eq!(payloads.len(), 1);
        prop_assert_eq!(CureMsg::decode(&payloads[0]).expect("decodes"), msg);
    }

    /// A whole stream of messages, chunked arbitrarily, reassembles to
    /// exactly the original sequence — the per-connection FIFO a real
    /// transport must preserve.
    #[test]
    fn message_streams_reassemble_in_order(
        msgs in proptest::collection::vec(arb_wren_msg(), 0..12),
        splits in proptest::collection::vec(1usize..64, 0..24),
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&frame_wren(m));
        }
        let payloads = reassemble(&wire, &splits).expect("well-formed stream");
        prop_assert_eq!(payloads.len(), msgs.len());
        for (payload, msg) in payloads.iter().zip(&msgs) {
            prop_assert_eq!(&WrenMsg::decode(payload).expect("decodes"), msg);
        }
    }

    /// Truncating a stream anywhere never panics: complete frames still
    /// decode, and the tail is reported as a partial frame (or nothing),
    /// exactly what a connection reader needs to flag `TruncatedFrame`.
    #[test]
    fn truncated_streams_never_panic(
        msgs in proptest::collection::vec(arb_wren_msg(), 1..6),
        cut_seed in any::<u64>(),
        splits in proptest::collection::vec(1usize..32, 0..8),
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&frame_wren(m));
        }
        let cut = (cut_seed as usize) % wire.len();
        let truncated = &wire[..cut];

        let mut dec = FrameDecoder::new();
        let mut pos = 0;
        let mut split_idx = 0;
        let mut complete = 0usize;
        while pos < truncated.len() {
            let step = if splits.is_empty() {
                truncated.len()
            } else {
                splits[split_idx % splits.len()]
            };
            split_idx += 1;
            let end = (pos + step).min(truncated.len());
            dec.extend(&truncated[pos..end]);
            pos = end;
            while let Some(payload) = dec.next_frame().expect("within size limits") {
                // Every complete frame is an intact original message.
                prop_assert_eq!(&WrenMsg::decode(&payload).expect("decodes"), &msgs[complete]);
                complete += 1;
            }
        }
        prop_assert!(complete <= msgs.len());
        // The leftover bytes are exactly the truncation tail.
        let consumed: usize = msgs[..complete]
            .iter()
            .map(|m| FRAME_HEADER_LEN + m.wire_size())
            .sum();
        prop_assert_eq!(dec.pending_bytes(), cut - consumed);
        prop_assert_eq!(dec.has_partial(), cut != consumed);
    }

    /// Arbitrary garbage fed to the decoder either yields frames (whose
    /// payloads may then fail message decoding — cleanly) or an
    /// oversized-frame error. Never a panic, never unbounded buffering.
    #[test]
    fn garbage_streams_are_total(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(1usize..32, 0..8),
    ) {
        match reassemble(&garbage, &splits) {
            Ok(payloads) => {
                for p in payloads {
                    let _ = WrenMsg::decode(&p); // total: Ok or Err, no panic
                    let _ = CureMsg::decode(&p);
                }
            }
            Err(FrameError::TooLarge { len, max }) => {
                prop_assert!(len > max);
            }
        }
    }

    /// Corrupting a frame's length header never panics: the decoder
    /// either errors (oversized), stalls waiting for more bytes, or
    /// yields a reframed payload whose decode is itself total.
    #[test]
    fn corrupt_length_prefix_is_total(
        msg in arb_wren_msg(),
        byte in 0usize..4,
        xor in 1u8..255,
    ) {
        let framed = frame_wren(&msg);
        let mut corrupted = framed.to_vec();
        corrupted[byte] ^= xor;
        match reassemble(&corrupted, &[]) {
            Ok(payloads) => {
                for p in payloads {
                    let _ = WrenMsg::decode(&p);
                }
            }
            Err(FrameError::TooLarge { len, max }) => {
                prop_assert!(len > max);
            }
        }
    }
}

/// The explicit max-frame-size guard: a header one past the limit is
/// rejected before any payload is buffered.
#[test]
fn oversized_frame_is_rejected_at_the_header() {
    let mut dec = FrameDecoder::new();
    dec.extend(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
    assert_eq!(
        dec.next_frame(),
        Err(FrameError::TooLarge {
            len: MAX_FRAME_LEN + 1,
            max: MAX_FRAME_LEN
        })
    );
    // Exactly at the limit is fine (it just waits for the payload).
    let mut dec = FrameDecoder::new();
    dec.extend(&(MAX_FRAME_LEN as u32).to_le_bytes());
    assert_eq!(dec.next_frame(), Ok(None));
}
