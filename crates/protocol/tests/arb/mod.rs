//! Shared proptest generators for protocol messages, used by the codec
//! round-trip suite and the framing fuzz suite.

use bytes::Bytes;
use proptest::prelude::*;
use wren_clock::{Timestamp, VersionVector};
use wren_protocol::{
    CureMsg, CureRepTx, CureReplicateBatch, CureVersion, DcId, Key, RepTx, ReplicateBatch,
    ServerId, TxId, Value, WrenMsg, WrenVersion,
};

pub fn arb_ts() -> impl Strategy<Value = Timestamp> {
    (0u64..(1 << 40), any::<u16>()).prop_map(|(p, l)| Timestamp::from_parts(p, l))
}

pub fn arb_tx() -> impl Strategy<Value = TxId> {
    (0u8..4, 0u16..16, 0u64..1 << 30)
        .prop_map(|(dc, p, seq)| TxId::new(ServerId::new(dc, p), seq))
}

pub fn arb_key() -> impl Strategy<Value = Key> {
    any::<u64>().prop_map(Key)
}

pub fn arb_value() -> impl Strategy<Value = Value> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(Bytes::from)
}

pub fn arb_vv() -> impl Strategy<Value = VersionVector> {
    proptest::collection::vec(arb_ts(), 1..6).prop_map(VersionVector::from_entries)
}

pub fn arb_wren_version() -> impl Strategy<Value = Option<WrenVersion>> {
    proptest::option::of(
        (arb_value(), arb_ts(), arb_ts(), arb_tx(), 0u8..5).prop_map(
            |(value, ut, rdt, tx, sr)| WrenVersion {
                value,
                ut,
                rdt,
                tx,
                sr: DcId(sr),
            },
        ),
    )
}

pub fn arb_cure_version() -> impl Strategy<Value = Option<CureVersion>> {
    proptest::option::of(
        (arb_value(), arb_ts(), arb_vv(), arb_tx(), 0u8..5).prop_map(
            |(value, ut, deps, tx, sr)| CureVersion {
                value,
                ut,
                deps,
                tx,
                sr: DcId(sr),
            },
        ),
    )
}

pub fn arb_writes() -> impl Strategy<Value = Vec<(Key, Value)>> {
    proptest::collection::vec((arb_key(), arb_value()), 0..8)
}

pub fn arb_wren_msg() -> impl Strategy<Value = WrenMsg> {
    prop_oneof![
        (arb_ts(), arb_ts()).prop_map(|(lst, rst)| WrenMsg::StartTxReq { lst, rst }),
        (arb_tx(), arb_ts(), arb_ts())
            .prop_map(|(tx, lst, rst)| WrenMsg::StartTxResp { tx, lst, rst }),
        (arb_tx(), proptest::collection::vec(arb_key(), 0..12))
            .prop_map(|(tx, keys)| WrenMsg::TxReadReq { tx, keys }),
        (
            arb_tx(),
            proptest::collection::vec((arb_key(), arb_wren_version()), 0..8)
        )
            .prop_map(|(tx, items)| WrenMsg::TxReadResp { tx, items }),
        (arb_tx(), arb_ts(), arb_writes())
            .prop_map(|(tx, hwt, writes)| WrenMsg::CommitReq { tx, hwt, writes }),
        (arb_tx(), arb_ts()).prop_map(|(tx, ct)| WrenMsg::CommitResp { tx, ct }),
        (arb_tx(), arb_ts(), arb_ts(), proptest::collection::vec(arb_key(), 0..12))
            .prop_map(|(tx, lt, rt, keys)| WrenMsg::SliceReq { tx, lt, rt, keys }),
        (
            arb_tx(),
            proptest::collection::vec((arb_key(), arb_wren_version()), 0..8)
        )
            .prop_map(|(tx, items)| WrenMsg::SliceResp { tx, items }),
        (arb_tx(), arb_ts(), arb_ts(), arb_ts(), arb_writes()).prop_map(
            |(tx, lt, rt, ht, writes)| WrenMsg::PrepareReq {
                tx,
                lt,
                rt,
                ht,
                writes
            }
        ),
        (arb_tx(), arb_ts()).prop_map(|(tx, pt)| WrenMsg::PrepareResp { tx, pt }),
        (arb_tx(), arb_ts()).prop_map(|(tx, ct)| WrenMsg::Commit { tx, ct }),
        (
            arb_ts(),
            proptest::collection::vec((arb_tx(), arb_ts(), arb_writes()), 0..4)
        )
            .prop_map(|(ct, txs)| WrenMsg::Replicate {
                batch: ReplicateBatch {
                    ct,
                    txs: txs
                        .into_iter()
                        .map(|(tx, rst, writes)| RepTx { tx, rst, writes })
                        .collect(),
                }
            }),
        arb_ts().prop_map(|t| WrenMsg::Heartbeat { t }),
        (arb_ts(), arb_ts()).prop_map(|(local, remote)| WrenMsg::StableGossip { local, remote }),
        (arb_ts(), arb_ts()).prop_map(|(oldest_lt, oldest_rt)| WrenMsg::GcGossip {
            oldest_lt,
            oldest_rt
        }),
        arb_ts().prop_map(|from| WrenMsg::CatchUpReq { from }),
        arb_ts().prop_map(|t| WrenMsg::CatchUpDone { t }),
    ]
}

pub fn arb_cure_msg() -> impl Strategy<Value = CureMsg> {
    prop_oneof![
        arb_vv().prop_map(|seen| CureMsg::StartTxReq { seen }),
        (arb_tx(), arb_vv()).prop_map(|(tx, snapshot)| CureMsg::StartTxResp { tx, snapshot }),
        (arb_tx(), proptest::collection::vec(arb_key(), 0..12))
            .prop_map(|(tx, keys)| CureMsg::TxReadReq { tx, keys }),
        (
            arb_tx(),
            proptest::collection::vec((arb_key(), arb_cure_version()), 0..6)
        )
            .prop_map(|(tx, items)| CureMsg::TxReadResp { tx, items }),
        (arb_tx(), arb_writes()).prop_map(|(tx, writes)| CureMsg::CommitReq { tx, writes }),
        (arb_tx(), arb_vv()).prop_map(|(tx, commit_vec)| CureMsg::CommitResp { tx, commit_vec }),
        (arb_tx(), arb_vv(), proptest::collection::vec(arb_key(), 0..12))
            .prop_map(|(tx, snapshot, keys)| CureMsg::SliceReq { tx, snapshot, keys }),
        (
            arb_tx(),
            proptest::collection::vec((arb_key(), arb_cure_version()), 0..6)
        )
            .prop_map(|(tx, items)| CureMsg::SliceResp { tx, items }),
        (arb_tx(), arb_vv(), arb_writes()).prop_map(|(tx, snapshot, writes)| {
            CureMsg::PrepareReq {
                tx,
                snapshot,
                writes,
            }
        }),
        (arb_tx(), arb_ts()).prop_map(|(tx, pt)| CureMsg::PrepareResp { tx, pt }),
        (arb_tx(), arb_ts()).prop_map(|(tx, ct)| CureMsg::Commit { tx, ct }),
        (
            arb_ts(),
            proptest::collection::vec((arb_tx(), arb_vv(), arb_writes()), 0..4)
        )
            .prop_map(|(ct, txs)| CureMsg::Replicate {
                batch: CureReplicateBatch {
                    ct,
                    txs: txs
                        .into_iter()
                        .map(|(tx, deps, writes)| CureRepTx { tx, deps, writes })
                        .collect(),
                }
            }),
        arb_ts().prop_map(|t| CureMsg::Heartbeat { t }),
        arb_vv().prop_map(|vv| CureMsg::StableGossip { vv }),
        arb_vv().prop_map(|oldest| CureMsg::GcGossip { oldest }),
    ]
}
