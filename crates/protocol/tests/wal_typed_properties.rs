//! Typed-layer WAL properties, driven by the same message generators as
//! the codec and framing fuzz suites (`tests/arb/`): arbitrary protocol
//! messages logged as WAL records, arbitrary tail damage, and the
//! recovered records must decode back to an exact **prefix** of the
//! logged messages — never a torn message, never a reordered one, never
//! a decode panic.
//!
//! This closes the loop the byte-level suite (`wren-storage`'s
//! `wal_properties`) leaves open: the valid-prefix guarantee composes
//! with the codec, so everything `read_records` hands back is decodable
//! — damage costs a tail of *messages*, not just a tail of bytes.

#[allow(dead_code)] // shared generator set; this suite draws Wren messages only
mod arb;

use arb::arb_wren_msg;
use proptest::prelude::*;
use std::path::PathBuf;
use wren_protocol::WrenMsg;
use wren_storage::wal::read_records;
use wren_storage::{FsyncPolicy, Wal};

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wren-waltyped-{tag}-{}.wal", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encode → log → truncate anywhere → recover → decode: the result
    /// is a prefix of the original message stream, member by member.
    #[test]
    fn truncated_log_decodes_to_message_prefix(
        (msgs, cut_frac) in (
            proptest::collection::vec(arb_wren_msg(), 1..8),
            0.0f64..1.0,
        )
    ) {
        let path = tmp("prefix");
        let mut wal = Wal::create(&path, FsyncPolicy::Off).unwrap();
        for m in &msgs {
            wal.append(&m.encode());
        }
        wal.seal().unwrap();
        drop(wal);

        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let rec = read_records(&path).expect("total");
        prop_assert!(rec.records.len() <= msgs.len());
        for (payload, original) in rec.records.iter().zip(&msgs) {
            let decoded = WrenMsg::decode(payload).expect("recovered record must decode");
            prop_assert_eq!(&decoded, original);
        }
        std::fs::remove_file(&path).ok();
    }

    /// A flipped bit can shorten the recovered stream but never makes a
    /// recovered record undecodable or unequal to what was logged.
    #[test]
    fn bit_flip_cannot_forge_a_message(
        (msgs, flip_frac, bit) in (
            proptest::collection::vec(arb_wren_msg(), 1..8),
            0.0f64..1.0,
            0u8..8,
        )
    ) {
        let path = tmp("flip");
        let mut wal = Wal::create(&path, FsyncPolicy::Off).unwrap();
        for m in &msgs {
            wal.append(&m.encode());
        }
        wal.seal().unwrap();
        drop(wal);

        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (((bytes.len() - 1) as f64) * flip_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let rec = read_records(&path).expect("total");
        prop_assert!(rec.records.len() <= msgs.len());
        for (payload, original) in rec.records.iter().zip(&msgs) {
            let decoded = WrenMsg::decode(payload).expect("recovered record must decode");
            prop_assert_eq!(&decoded, original);
        }
        std::fs::remove_file(&path).ok();
    }
}
