//! Property-based tests: every arbitrarily-generated message round-trips
//! through the codec, and `wire_size` is always exactly the encoded
//! length (the foundation of the Fig. 7a byte accounting).
//!
//! Message generators live in [`arb`], shared with the framing fuzz
//! suite (`frame_properties.rs`).

mod arb;

use arb::{arb_wren_msg, arb_cure_msg};
use proptest::prelude::*;
use wren_protocol::{CureMsg, WrenMsg};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn wren_messages_round_trip(msg in arb_wren_msg()) {
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.wire_size(), "wire_size must be exact");
        let back = WrenMsg::decode(&bytes).expect("decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn cure_messages_round_trip(msg in arb_cure_msg()) {
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.wire_size(), "wire_size must be exact");
        let back = CureMsg::decode(&bytes).expect("decodes");
        prop_assert_eq!(back, msg);
    }

    /// Decoding never panics on arbitrary garbage — it returns an error or
    /// (for byte strings that happen to be valid) a message.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = WrenMsg::decode(&bytes);
        let _ = CureMsg::decode(&bytes);
    }

    /// Truncating a valid encoding always fails cleanly.
    #[test]
    fn truncation_is_detected(msg in arb_wren_msg(), cut in 0usize..64) {
        let bytes = msg.encode();
        if bytes.len() > 1 {
            let cut = cut % (bytes.len() - 1);
            // Either a clean error, or (rarely) a shorter valid message —
            // never a panic. Collections with length prefixes make prefix
            // validity possible, so only assert totality plus: the full
            // decode of the untruncated bytes matches.
            let _ = WrenMsg::decode(&bytes[..cut + 1]);
        }
        prop_assert_eq!(WrenMsg::decode(&bytes).unwrap(), msg);
    }
}
