use crate::Zipfian;
use bytes::Bytes;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;
use wren_protocol::{Key, Value};

/// A read:write transaction mix.
///
/// The paper's workloads issue fixed-shape transactions: "19 reads and 1
/// write (95:5), 18 reads and 2 writes (90:10), and 10 reads and 10 writes
/// (50:50)" (§V-A). 50:50 and 95:5 correspond to YCSB workloads A and B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxMix {
    /// Reads per transaction.
    pub reads: usize,
    /// Writes per transaction.
    pub writes: usize,
}

impl TxMix {
    /// The paper's 95:5 read:write ratio (19 reads, 1 write) — YCSB B.
    pub const R95_W5: TxMix = TxMix { reads: 19, writes: 1 };
    /// The paper's 90:10 ratio (18 reads, 2 writes).
    pub const R90_W10: TxMix = TxMix { reads: 18, writes: 2 };
    /// The paper's 50:50 ratio (10 reads, 10 writes) — YCSB A.
    pub const R50_W50: TxMix = TxMix { reads: 10, writes: 10 };

    /// Human-readable label matching the paper's figures ("95:5" etc).
    pub fn label(&self) -> String {
        let total = self.reads + self.writes;
        format!(
            "{}:{}",
            self.reads * 100 / total,
            self.writes * 100 / total
        )
    }
}

/// Full description of a workload, mirroring §V-A.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Keys stored per partition.
    pub keys_per_partition: u64,
    /// Value payload size in bytes (the paper uses 8-byte items).
    pub value_size: usize,
    /// Transaction shape.
    pub mix: TxMix,
    /// Number of distinct partitions each transaction touches (`p`).
    pub partitions_per_tx: usize,
    /// Zipfian skew within a partition's key space.
    pub zipf_theta: f64,
}

impl Default for WorkloadSpec {
    /// The paper's default: 95:5 mix, p=4, zipfian 0.99, 8-byte values.
    fn default() -> Self {
        WorkloadSpec {
            keys_per_partition: 10_000,
            value_size: 8,
            mix: TxMix::R95_W5,
            partitions_per_tx: 4,
            zipf_theta: 0.99,
        }
    }
}

/// The sampled shape of one transaction: which keys to read, which to
/// write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxShape {
    /// Keys to read (all in one parallel round, as in the paper).
    pub reads: Vec<Key>,
    /// Keys to write (tagged with values by the driver).
    pub writes: Vec<Key>,
}

/// A compiled workload: per-partition key pools plus the zipfian sampler,
/// shared (via [`Arc`]) by every client in an experiment.
#[derive(Debug, Clone)]
pub struct Workload {
    spec: WorkloadSpec,
    n_partitions: u16,
    /// `pools[p][rank]` = the rank-th key of partition `p`.
    pools: Arc<Vec<Vec<Key>>>,
    zipf: Zipfian,
}

impl Workload {
    /// Compiles `spec` for a deployment with `n_partitions` partitions:
    /// enumerates key ids until every partition owns
    /// `spec.keys_per_partition` keys (the key → partition map is a hash,
    /// so pools are built by scanning).
    ///
    /// # Panics
    ///
    /// Panics if `spec.partitions_per_tx` exceeds `n_partitions`.
    pub fn compile(spec: WorkloadSpec, n_partitions: u16) -> Self {
        assert!(
            spec.partitions_per_tx <= n_partitions as usize,
            "transaction touches more partitions than exist"
        );
        let mut pools: Vec<Vec<Key>> = vec![Vec::new(); n_partitions as usize];
        let mut filled = 0usize;
        let mut id = 0u64;
        while filled < n_partitions as usize {
            let key = Key(id);
            let p = key.partition(n_partitions).index();
            if (pools[p].len() as u64) < spec.keys_per_partition {
                pools[p].push(key);
                if pools[p].len() as u64 == spec.keys_per_partition {
                    filled += 1;
                }
            }
            id += 1;
        }
        let zipf = Zipfian::new(spec.keys_per_partition, spec.zipf_theta);
        Workload {
            spec,
            n_partitions,
            pools: Arc::new(pools),
            zipf,
        }
    }

    /// The workload specification.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of partitions this workload was compiled for.
    pub fn n_partitions(&self) -> u16 {
        self.n_partitions
    }

    /// Samples the shape of one transaction: `p` distinct partitions
    /// chosen uniformly, reads and writes dealt round-robin across them,
    /// keys drawn zipfian within each partition (distinct within the
    /// transaction).
    pub fn sample_tx<R: Rng>(&self, rng: &mut R) -> TxShape {
        let p = self.spec.partitions_per_tx;
        let mut partitions: Vec<usize> = (0..self.n_partitions as usize).collect();
        partitions.shuffle(rng);
        partitions.truncate(p);

        let mut used: Vec<Vec<u64>> = vec![Vec::new(); p];
        let pick = |slot: usize, rng: &mut R, used: &mut Vec<Vec<u64>>| -> Key {
            let pool = &self.pools[partitions[slot]];
            loop {
                let rank = self.zipf.sample(rng);
                if !used[slot].contains(&rank) {
                    used[slot].push(rank);
                    return pool[rank as usize];
                }
                // All ranks taken (tiny pools): fall back to a linear scan.
                if used[slot].len() as u64 >= self.zipf.n() {
                    let rank = (0..self.zipf.n())
                        .find(|r| !used[slot].contains(r))
                        .unwrap_or(0);
                    used[slot].push(rank);
                    return pool[rank as usize];
                }
            }
        };

        let mut reads = Vec::with_capacity(self.spec.mix.reads);
        for i in 0..self.spec.mix.reads {
            reads.push(pick(i % p, rng, &mut used));
        }
        let mut writes = Vec::with_capacity(self.spec.mix.writes);
        for i in 0..self.spec.mix.writes {
            writes.push(pick(i % p, rng, &mut used));
        }
        TxShape { reads, writes }
    }

    /// Builds the value payload a client writes: `value_size` bytes with a
    /// marker (client id, sequence) encoded in the first 8 so correctness
    /// checkers can identify writers.
    pub fn make_value(&self, client: u32, seq: u32) -> Value {
        let mut buf = vec![0u8; self.spec.value_size.max(8)];
        buf[..4].copy_from_slice(&client.to_le_bytes());
        buf[4..8].copy_from_slice(&seq.to_le_bytes());
        Bytes::from(buf)
    }
}

/// Decodes the `(client, seq)` marker from a value produced by
/// [`Workload::make_value`].
pub fn decode_value(v: &Value) -> Option<(u32, u32)> {
    if v.len() < 8 {
        return None;
    }
    let client = u32::from_le_bytes(v[..4].try_into().ok()?);
    let seq = u32::from_le_bytes(v[4..8].try_into().ok()?);
    Some((client, seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mix_labels_match_paper() {
        assert_eq!(TxMix::R95_W5.label(), "95:5");
        assert_eq!(TxMix::R90_W10.label(), "90:10");
        assert_eq!(TxMix::R50_W50.label(), "50:50");
    }

    #[test]
    fn compile_fills_every_partition() {
        let spec = WorkloadSpec {
            keys_per_partition: 50,
            ..WorkloadSpec::default()
        };
        let w = Workload::compile(spec, 8);
        for p in 0..8u16 {
            let pool = &w.pools[p as usize];
            assert_eq!(pool.len(), 50);
            for k in pool {
                assert_eq!(k.partition(8).0, p, "pool key on wrong partition");
            }
        }
    }

    #[test]
    fn sampled_tx_has_requested_shape() {
        let spec = WorkloadSpec {
            keys_per_partition: 100,
            mix: TxMix::R95_W5,
            partitions_per_tx: 4,
            ..WorkloadSpec::default()
        };
        let w = Workload::compile(spec, 8);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let tx = w.sample_tx(&mut rng);
            assert_eq!(tx.reads.len(), 19);
            assert_eq!(tx.writes.len(), 1);
            let mut partitions: Vec<u16> = tx
                .reads
                .iter()
                .chain(&tx.writes)
                .map(|k| k.partition(8).0)
                .collect();
            partitions.sort_unstable();
            partitions.dedup();
            assert!(partitions.len() <= 4, "touches more than p partitions");
            // Writes target one of the partitions already being read.
            let wp = tx.writes[0].partition(8).0;
            assert!(tx.reads.iter().any(|k| k.partition(8).0 == wp));
        }
    }

    #[test]
    fn keys_within_tx_are_distinct() {
        let spec = WorkloadSpec {
            keys_per_partition: 30,
            mix: TxMix::R50_W50,
            partitions_per_tx: 2,
            ..WorkloadSpec::default()
        };
        let w = Workload::compile(spec, 4);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let tx = w.sample_tx(&mut rng);
            let mut all: Vec<Key> = tx.reads.iter().chain(&tx.writes).copied().collect();
            let before = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), before, "duplicate key within a transaction");
        }
    }

    #[test]
    fn value_round_trips_marker() {
        let w = Workload::compile(WorkloadSpec::default(), 4);
        let v = w.make_value(42, 7);
        assert_eq!(v.len(), 8);
        assert_eq!(decode_value(&v), Some((42, 7)));
        assert_eq!(decode_value(&Bytes::from_static(b"abc")), None);
    }

    #[test]
    #[should_panic(expected = "more partitions than exist")]
    fn rejects_p_beyond_n() {
        let spec = WorkloadSpec {
            partitions_per_tx: 9,
            ..WorkloadSpec::default()
        };
        Workload::compile(spec, 8);
    }
}
