use rand::Rng;

/// A zipfian integer generator over `0..n`, using the rejection-inversion
/// method popularized by Gray et al. and used by YCSB.
///
/// The paper's workloads access keys "according to a zipfian distribution,
/// with parameter 0.99, which is the default in YCSB and resembles the
/// strong skew that characterizes many production systems" (§V-A).
///
/// # Example
///
/// ```
/// use wren_workload::Zipfian;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let zipf = Zipfian::new(1_000, 0.99);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let sample = zipf.sample(&mut rng);
/// assert!(sample < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a generator over `0..n` with skew `theta` (YCSB default
    /// 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over an empty domain");
        assert!((0.0..1.0).contains(&theta) && theta > 0.0, "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    /// The domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; domains in this repository are ≤ a few million.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws one sample in `0..n`; rank 0 is the hottest item.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Kept for diagnostics: the zeta constant over 2 items.
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn distribution_is_skewed_toward_low_ranks() {
        let z = Zipfian::new(1_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hot = 0u64;
        let total = 100_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                hot += 1;
            }
        }
        // With theta=0.99 the top-10 of 1000 items draw far more than the
        // uniform 1% — empirically ~35-40%.
        assert!(
            hot > total / 5,
            "top-10 items drew only {hot}/{total} samples"
        );
    }

    #[test]
    fn lower_theta_is_less_skewed() {
        let mut rng = SmallRng::seed_from_u64(7);
        let count_hot = |theta: f64, rng: &mut SmallRng| {
            let z = Zipfian::new(1_000, theta);
            (0..50_000).filter(|_| z.sample(rng) < 10).count()
        };
        let hot_low = count_hot(0.5, &mut rng);
        let hot_high = count_hot(0.99, &mut rng);
        assert!(hot_high > hot_low, "{hot_high} should exceed {hot_low}");
    }

    #[test]
    fn singleton_domain_always_zero() {
        let z = Zipfian::new(1, 0.5);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_panics() {
        Zipfian::new(0, 0.99);
    }
}
