//! YCSB-style workload generation for the Wren reproduction.
//!
//! Implements the exact load the paper evaluates with (§V-A):
//!
//! * fixed-shape read/write transactions — [`TxMix::R95_W5`] (19 reads +
//!   1 write), [`TxMix::R90_W10`], [`TxMix::R50_W50`], corresponding to
//!   YCSB B and A;
//! * each transaction touches `p` partitions chosen uniformly, with keys
//!   drawn **zipfian (θ = 0.99)** within each partition
//!   ([`Workload::sample_tx`]);
//! * 8-byte items whose payload encodes `(client, sequence)` so
//!   correctness checkers can attribute every observed version
//!   ([`Workload::make_value`] / [`decode_value`]).
//!
//! Clients run closed-loop (one outstanding transaction per session); the
//! drivers in `wren-harness` and `wren-rt` own the loop, this crate owns
//! the sampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod spec;
mod zipfian;

pub use spec::{decode_value, TxMix, TxShape, Workload, WorkloadSpec};
pub use zipfian::Zipfian;
