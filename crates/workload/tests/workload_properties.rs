//! Property-based tests for workload generation.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wren_workload::{decode_value, TxMix, Workload, WorkloadSpec, Zipfian};

proptest! {
    /// Zipfian samples always stay in the domain and the empirical rank
    /// frequencies are non-increasing-ish: rank 0 is sampled at least as
    /// often as the tail half combined being rare (weak but robust check).
    #[test]
    fn zipfian_in_range_and_skewed(n in 2u64..5_000, theta in 0.01f64..0.999, seed in 0u64..1_000) {
        let z = Zipfian::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut head = 0u32;
        for _ in 0..500 {
            let s = z.sample(&mut rng);
            prop_assert!(s < n);
            if s == 0 {
                head += 1;
            }
        }
        // For genuinely skewed settings, rank 0 must be drawn far more
        // often than uniform (1/n). Near-uniform thetas are exempt.
        if n > 100 && theta > 0.7 {
            prop_assert!(head >= 5, "head sampled only {} times", head);
        }
    }

    /// Every sampled transaction has the exact requested shape, all keys
    /// belong to their partitions, and keys are distinct.
    #[test]
    fn tx_shapes_are_exact(
        n_partitions in 2u16..12,
        p in 1usize..6,
        seed in 0u64..500,
        mix_idx in 0usize..3,
    ) {
        let p = p.min(n_partitions as usize);
        let mix = [TxMix::R95_W5, TxMix::R90_W10, TxMix::R50_W50][mix_idx];
        let spec = WorkloadSpec {
            keys_per_partition: 64,
            mix,
            partitions_per_tx: p,
            ..WorkloadSpec::default()
        };
        let w = Workload::compile(spec, n_partitions);
        let mut rng = SmallRng::seed_from_u64(seed);
        let tx = w.sample_tx(&mut rng);
        prop_assert_eq!(tx.reads.len(), mix.reads);
        prop_assert_eq!(tx.writes.len(), mix.writes);
        let mut partitions: Vec<u16> = tx
            .reads
            .iter()
            .chain(&tx.writes)
            .map(|k| k.partition(n_partitions).0)
            .collect();
        partitions.sort_unstable();
        partitions.dedup();
        prop_assert!(partitions.len() <= p, "touched more than p partitions");
        let mut all: Vec<_> = tx.reads.iter().chain(&tx.writes).copied().collect();
        let count = all.len();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), count, "duplicate keys in one transaction");
    }

    /// Value markers round-trip for arbitrary client/seq pairs and pad to
    /// the requested size.
    #[test]
    fn value_markers_round_trip(client in any::<u32>(), seq in any::<u32>(), size in 8usize..64) {
        let spec = WorkloadSpec {
            value_size: size,
            keys_per_partition: 16,
            partitions_per_tx: 2, // default p=4 exceeds the 2 partitions here
            ..WorkloadSpec::default()
        };
        let w = Workload::compile(spec, 2);
        let v = w.make_value(client, seq);
        prop_assert_eq!(v.len(), size.max(8));
        prop_assert_eq!(decode_value(&v), Some((client, seq)));
    }
}
