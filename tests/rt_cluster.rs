//! Integration tests for the threaded runtime: the same guarantees the
//! simulator enforces, on real threads and wall-clock time.

use bytes::Bytes;
use std::time::{Duration, Instant};
use wren::protocol::Key;
use wren::rt::ClusterBuilder;

fn bval(i: u64) -> Bytes {
    Bytes::from(i.to_le_bytes().to_vec())
}

#[test]
fn read_your_writes_immediately() {
    let cluster = ClusterBuilder::new().dcs(1).partitions(4).build();
    let mut s = cluster.session(0);
    for i in 0..20u64 {
        s.begin().unwrap();
        s.write(Key(i % 3), bval(i));
        s.commit().unwrap();
        s.begin().unwrap();
        assert_eq!(
            s.read_one(Key(i % 3)).unwrap(),
            Some(bval(i)),
            "own write {i} must be visible immediately"
        );
        s.commit().unwrap();
    }
    cluster.shutdown();
}

#[test]
fn monotonic_reads_across_sessions_of_one_client() {
    let cluster = ClusterBuilder::new().dcs(1).partitions(2).build();
    let mut writer = cluster.session(0);
    let mut reader = cluster.session(0);

    let mut last_seen = 0u64;
    for i in 1..=30u64 {
        writer.begin().unwrap();
        writer.write(Key(7), bval(i));
        writer.commit().unwrap();

        reader.begin().unwrap();
        let v = reader.read_one(Key(7)).unwrap();
        reader.commit().unwrap();
        if let Some(bytes) = v {
            let seen = u64::from_le_bytes(bytes.as_ref().try_into().unwrap());
            assert!(seen >= last_seen, "monotonic reads violated: {seen} < {last_seen}");
            last_seen = seen;
        }
    }
    cluster.shutdown();
}

#[test]
fn atomic_multi_partition_writes() {
    let cluster = ClusterBuilder::new().dcs(1).partitions(4).build();
    let keys: Vec<Key> = {
        // Keys on distinct partitions.
        let mut keys = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut k = 0u64;
        while keys.len() < 4 {
            if seen.insert(Key(k).partition(4)) {
                keys.push(Key(k));
            }
            k += 1;
        }
        keys
    };

    let mut writer = cluster.session(0);
    let mut reader = cluster.session(0);
    for round in 1..=25u64 {
        writer.begin().unwrap();
        for k in &keys {
            writer.write(*k, bval(round));
        }
        writer.commit().unwrap();

        reader.begin().unwrap();
        let vals = reader.read(&keys).unwrap();
        reader.commit().unwrap();
        let rounds: Vec<Option<u64>> = vals
            .iter()
            .map(|(_, v)| {
                v.as_ref()
                    .map(|b| u64::from_le_bytes(b.as_ref().try_into().unwrap()))
            })
            .collect();
        let first = rounds[0];
        assert!(
            rounds.iter().all(|r| *r == first),
            "snapshot mixed rounds: {rounds:?} at round {round}"
        );
    }
    cluster.shutdown();
}

#[test]
fn geo_replication_converges() {
    let cluster = ClusterBuilder::new().dcs(3).partitions(2).build();
    let mut writer = cluster.session(0);
    writer.begin().unwrap();
    writer.write(Key(42), Bytes::from_static(b"geo"));
    writer.commit().unwrap();

    for dc in 1..3u8 {
        let mut reader = cluster.session(dc);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            reader.begin().unwrap();
            let v = reader.read_one(Key(42)).unwrap();
            reader.commit().unwrap();
            if v.as_deref() == Some(b"geo".as_slice()) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "update never became visible in DC {dc}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    cluster.shutdown();
}

#[test]
fn concurrent_sessions_make_progress() {
    let cluster = std::sync::Arc::new(
        ClusterBuilder::new().dcs(2).partitions(2).build(),
    );
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let cluster = std::sync::Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let mut s = cluster.session((t % 2) as u8);
            for i in 0..30u64 {
                s.begin().expect("begin");
                let k = Key(t * 1000 + (i % 5));
                s.write(k, bval(i));
                s.commit().expect("commit");
                s.begin().expect("begin");
                assert_eq!(s.read_one(k).expect("read"), Some(bval(i)));
                s.commit().expect("commit");
            }
            s.stats().txs_committed
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 6 * 30);
    cluster.shutdown();
}

#[test]
fn read_only_transactions_work() {
    let cluster = ClusterBuilder::new().dcs(1).partitions(2).build();
    let mut s = cluster.session(0);
    s.begin().unwrap();
    let v = s.read_one(Key(999)).unwrap();
    assert_eq!(v, None);
    let ct = s.commit().unwrap();
    assert!(ct.is_zero(), "read-only commit returns the zero timestamp");
    cluster.shutdown();
}

#[test]
fn stop_returns_per_server_stats() {
    let cluster = ClusterBuilder::new().dcs(2).partitions(2).build();
    let mut s = cluster.session(0);
    for i in 0..10u64 {
        s.begin().unwrap();
        s.write(Key(i), bval(i));
        s.commit().unwrap();
    }
    drop(s);
    // Let the apply/replication ticks install the last commits before
    // tearing the threads down.
    std::thread::sleep(Duration::from_millis(50));
    let stats = cluster.stop();
    assert_eq!(stats.len(), 4, "one stats entry per server");
    let coordinated: u64 = stats.iter().map(|st| st.txs_coordinated).sum();
    assert_eq!(coordinated, 10, "every transaction was coordinated somewhere");
    let applied: u64 = stats.iter().map(|st| st.local_versions_applied).sum();
    assert_eq!(applied, 10, "every write was applied at its home partition");
}
