//! The chaos failover oracle: a live multi-DC TCP cluster under a
//! **seeded** storm of injected network faults (drops that sever links,
//! duplicates, delay/reorder, refused dials, a full inter-DC partition)
//! interleaved with abrupt kill-and-restart cycles — while client
//! traffic keeps flowing. After the storm heals, every DC must converge
//! to **exactly the acknowledged write set**: nothing acknowledged may
//! be lost, nothing unacknowledged may survive.
//!
//! Determinism: every random choice — the fault dice inside the
//! [`FaultPlan`], the schedule of rate flips, severs and kills — derives
//! from one seed, printed at the start of each run. A red run replays
//! with `CHAOS_SEED=<seed> cargo test --test chaos_failover`.
//!
//! Why the oracle is exact: writers are per-key with strictly increasing
//! values, the session layer never re-sends a commit (so a commit is
//! acknowledged at most once), and an unacknowledged commit can only be
//! the coordinator's in-doubt abort — which fixes the outcome as ABORT
//! before any client-visible timeout fires. Acknowledged ⟺ applied.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use wren::protocol::{Key, ServerId};
use wren::rt::{Cluster, ClusterBuilder, FaultPlan, FsyncPolicy, RtError, Session};

fn bval(i: u64) -> Bytes {
    Bytes::from(i.to_le_bytes().to_vec())
}

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wren-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The run's seed: `CHAOS_SEED` if set (replay), a fixed default
/// otherwise (CI stays reproducible without an env var).
fn chaos_seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => s.parse().expect("CHAOS_SEED must be a u64"),
        Err(_) => 0xC4A0_5EED,
    }
}

fn session_at(cluster: &Cluster, dc: u8, p: u16) -> Session {
    for _ in 0..cluster.n_partitions() {
        let s = cluster.session(dc);
        if s.coordinator() == ServerId::new(dc, p) {
            return s;
        }
    }
    unreachable!("round-robin must cycle through every partition");
}

/// One write attempt. Only an acknowledged commit updates the oracle;
/// an error (in-doubt abort, retry budget exhausted mid-storm) leaves
/// the oracle untouched — exactly the at-most-once contract the final
/// convergence check verifies.
fn try_put(session: &mut Session, oracle: &mut HashMap<Key, u64>, key: Key, value: u64) {
    if session.begin().is_err() {
        return;
    }
    session.write(key, bval(value));
    if session.commit().is_ok() {
        oracle.insert(key, value);
    }
}

/// On oracle failure, prints the tail of every partition's tx-lifecycle
/// trace ring before panicking — the chaos post-mortem: what each
/// partition last saw (begins, prepares, decisions, in-doubt aborts,
/// applies, stable raises, kills, restarts, link churn) leading up to
/// the divergence, without re-running the seed under a debugger.
fn dump_traces(cluster: &Cluster, what: &str) {
    const TAIL: usize = 40;
    eprintln!("{what}: partition trace rings (oldest of the tail first):");
    for (server, events) in cluster.dump_traces() {
        let skip = events.len().saturating_sub(TAIL);
        eprintln!("  {server}: {} events, showing {}", events.len(), events.len() - skip);
        for ev in &events[skip..] {
            eprintln!("    {ev:?}");
        }
    }
}

/// Polls until one snapshot serves every `(key, value)` pair in
/// `expected`; transient read errors retry. Panics (with the seed in
/// `what`, after dumping every partition's trace ring) at the deadline.
fn expect_converges(
    cluster: &Cluster,
    session: &mut Session,
    expected: &HashMap<Key, u64>,
    timeout: Duration,
    what: &str,
) {
    let deadline = Instant::now() + timeout;
    let keys: Vec<Key> = expected.keys().copied().collect();
    let mut last = None;
    loop {
        if session.begin().is_ok() {
            match session.read(&keys) {
                Ok(got) => {
                    let _ = session.commit();
                    let ok = got.iter().all(|(k, v)| {
                        v.as_ref().map(|b| u64::from_le_bytes(b.as_ref().try_into().unwrap()))
                            == Some(expected[k])
                    });
                    if ok {
                        return;
                    }
                    last = Some(got);
                }
                // Nonblocking reads: after the storm heals, a read may
                // ride out link churn (retried inside the session) but
                // must never *block* — a timeout here is a failure of
                // the paper's core claim, not a transient.
                Err(RtError::Timeout) => {
                    dump_traces(cluster, what);
                    panic!("{what}: a read blocked (timed out)");
                }
                Err(_) => {}
            }
        }
        if Instant::now() >= deadline {
            dump_traces(cluster, what);
            panic!("{what}: did not converge to the acknowledged write set; last {last:?}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Drives one fabric through the storm. `seed` feeds both the fault
/// plan and the schedule RNG, so the whole run replays from one number.
fn chaos_run(
    fabric_name: &str,
    fabric: fn(ClusterBuilder) -> ClusterBuilder,
    seed: u64,
) {
    eprintln!("chaos_failover[{fabric_name}]: seed = {seed} (replay with CHAOS_SEED={seed})");
    let mut rng = SmallRng::seed_from_u64(seed);
    let plan = FaultPlan::seeded(seed);
    let root = tmp_root(fabric_name);
    let mut cluster = fabric(ClusterBuilder::new().dcs(2).partitions(2))
        .durable(&root)
        .fsync(FsyncPolicy::Always)
        .checkpoint_interval(Duration::from_millis(25))
        .replication_tick(Duration::from_millis(1))
        .gossip_tick(Duration::from_millis(2))
        // A commit whose cohort died mid-storm ends as the
        // coordinator's in-doubt abort, *reported* to the session as an
        // explicit abort reply (`RtError::Aborted`) as soon as
        // `tx_abort_timeout` fires — the stall is the abort timeout,
        // not this session timeout. Keep the session timeout
        // comfortably above it anyway: the exactness argument needs
        // the abort decided before the client could give up on its own.
        .session_timeout(Duration::from_millis(1_200))
        .dial_retry_budget(Duration::from_millis(300))
        .tx_abort_timeout(Duration::from_millis(300))
        .fault_plan(plan.clone())
        .build();

    // Writers live on partition 0 of each DC; kills only ever target
    // partition 1, so a writer's coordinator is never the victim (its
    // 2PC cohort and its replication sibling are — that's the storm).
    let mut writers = [session_at(&cluster, 0, 0), session_at(&cluster, 1, 0)];
    let keys: Vec<Key> = (0..8u64).map(Key).collect();
    let mut oracle = HashMap::new();
    let mut value = 0u64;

    for round in 0..4u32 {
        // Each round rolls its own weather: mild frame chaos always,
        // sometimes an inter-DC partition, sometimes a kill/restart.
        plan.set_rates(
            rng.gen_range(0.0..0.03),
            rng.gen_range(0.0..0.08),
            rng.gen_range(0.0..0.08),
        );
        let island = round > 0 && rng.gen::<f64>() < 0.5;
        if island {
            let dc = rng.gen_range(0..2u8);
            let group: Vec<ServerId> =
                (0..cluster.n_partitions()).map(|p| ServerId::new(dc, p)).collect();
            plan.partition(&group);
        }
        let victim = if round > 0 && rng.gen::<f64>() < 0.7 {
            let dc = rng.gen_range(0..2u8);
            cluster.kill_partition(dc, 1);
            Some(dc)
        } else {
            None
        };

        for _ in 0..4 {
            for (ki, key) in keys.iter().enumerate() {
                value += 1;
                let w = rng.gen_range(0..2usize);
                try_put(&mut writers[w], &mut oracle, *key, value * 10 + ki as u64);
            }
            std::thread::sleep(Duration::from_millis(rng.gen_range(1..5)));
        }

        if let Some(dc) = victim {
            std::thread::sleep(Duration::from_millis(rng.gen_range(10..40)));
            cluster.restart_partition(dc, 1);
        }
        if island {
            plan.heal();
        }
    }

    // Heal completely, then fence: a healthy write per key pins the
    // final expected value and proves both writers outlived the storm.
    plan.set_rates(0.0, 0.0, 0.0);
    plan.heal();
    for (ki, key) in keys.iter().enumerate() {
        value += 1;
        try_put(&mut writers[ki % 2], &mut oracle, *key, value * 10 + ki as u64);
    }
    assert!(
        !oracle.is_empty(),
        "seed {seed}: the storm must not have starved every commit"
    );

    // Quiesce: catch-up windows, re-dials and stabilization settle.
    std::thread::sleep(Duration::from_millis(200));
    for dc in 0..2u8 {
        let mut reader = cluster.session(dc);
        expect_converges(
            &cluster,
            &mut reader,
            &oracle,
            Duration::from_secs(20),
            &format!("{fabric_name} seed {seed}: DC {dc} after the storm"),
        );
    }
    assert!(
        plan.stats().injected() > 0,
        "seed {seed}: the run injected no faults at all: {:?}",
        plan.stats()
    );
    eprintln!(
        "chaos_failover[{fabric_name}]: converged; injected = {:?}",
        plan.stats()
    );
    cluster.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn chaos_failover_reactor_fabric() {
    chaos_run("reactor", ClusterBuilder::tcp, chaos_seed());
}

#[test]
fn chaos_failover_threaded_fabric() {
    // Offset the seed so the two fabrics see different storms by
    // default while both remain replayable via CHAOS_SEED.
    chaos_run("threaded", ClusterBuilder::tcp_threaded, chaos_seed() ^ 1);
}
