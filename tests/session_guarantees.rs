//! The four session guarantees, exercised explicitly (the causal oracle
//! checks them statistically; these tests construct the exact adversarial
//! schedules):
//!
//! * read-your-writes, monotonic reads — also covered elsewhere;
//! * **monotonic writes** — a session's writes apply in session order;
//! * **writes-follow-reads** — a write causally follows everything the
//!   session read before it.

mod common;

use common::{decode_marker, keys_on_distinct_partitions, marker, run_tx, WrenNet};
use wren::core::WrenClient;
use wren::protocol::{ClientId, ServerId};

#[test]
fn monotonic_writes_within_a_session() {
    // A session overwrites the same key repeatedly WITHOUT stabilization
    // in between; commit timestamps must still be strictly increasing, so
    // LWW can never expose an older own-write over a newer one.
    let mut net = WrenNet::new(1, 2);
    let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let keys = keys_on_distinct_partitions(2, 1);

    let mut last_ct = wren::clock::Timestamp::ZERO;
    for seq in 1..=20u32 {
        let (_, ct) = run_tx(&mut net, &mut c, &[], &[(keys[0], marker(1, seq))]);
        assert!(ct > last_ct, "commit timestamps must increase in session order");
        last_ct = ct;
    }
    net.stabilize(5);

    // Any fresh observer sees the LAST write (never an earlier one).
    let mut fresh = WrenClient::new(ClientId(2), ServerId::new(0, 1));
    let (res, _) = run_tx(&mut net, &mut fresh, &keys, &[]);
    assert_eq!(
        res[0].1.as_ref().map(decode_marker),
        Some((1, 20)),
        "monotonic writes violated: stale own-write won LWW"
    );
}

#[test]
fn writes_follow_reads_across_sessions() {
    // Alice writes x. Bob reads x, then writes y. Bob's y must causally
    // follow Alice's x: any snapshot containing y contains (that or a
    // newer) x. We verify via the commit-timestamp ordering that enforces
    // it: ct(y) > ct(x) because Bob's snapshot covered x.
    let mut net = WrenNet::new(1, 2);
    let keys = keys_on_distinct_partitions(2, 2);
    let (x, y) = (keys[0], keys[1]);
    let mut alice = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let mut bob = WrenClient::new(ClientId(2), ServerId::new(0, 1));

    let (_, ct_x) = run_tx(&mut net, &mut alice, &[], &[(x, marker(1, 1))]);
    net.stabilize(4);

    // Bob reads x (it is in his snapshot now), then writes y.
    let (res, _) = run_tx(&mut net, &mut bob, &[x], &[]);
    assert!(res[0].1.is_some(), "bob must see alice's write");
    let (_, ct_y) = run_tx(&mut net, &mut bob, &[], &[(y, marker(2, 1))]);

    assert!(
        ct_y > ct_x,
        "writes-follow-reads: ct(y)={ct_y:?} must exceed ct(x)={ct_x:?}"
    );
    net.stabilize(4);

    // And the oracle-style check: a reader seeing y must see x.
    let mut carol = WrenClient::new(ClientId(3), ServerId::new(0, 0));
    for _ in 0..5 {
        let (res, _) = run_tx(&mut net, &mut carol, &[y, x], &[]);
        let saw_y = res.iter().find(|(k, _)| *k == y).unwrap().1.is_some();
        let saw_x = res.iter().find(|(k, _)| *k == x).unwrap().1.is_some();
        if saw_y {
            assert!(saw_x, "y visible without the x it causally follows");
        }
        net.stabilize(1);
    }
}

#[test]
fn read_your_writes_survives_cache_pruning() {
    // The cache is pruned as LST advances; afterwards reads come from the
    // server — the value must be identical through the transition.
    let mut net = WrenNet::new(1, 2);
    let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let keys = keys_on_distinct_partitions(2, 1);

    run_tx(&mut net, &mut c, &[], &[(keys[0], marker(1, 9))]);

    // Phase 1: cache serves the read (LST has not covered the write).
    let (res, _) = run_tx(&mut net, &mut c, &keys, &[]);
    assert_eq!(res[0].1.as_ref().map(decode_marker), Some((1, 9)));
    let cache_hits_before = c.stats().hits_cache;
    assert!(cache_hits_before > 0, "expected a cache hit before stabilization");

    // Phase 2: stabilize → cache pruned → server serves the same value.
    net.stabilize(5);
    let (res, _) = run_tx(&mut net, &mut c, &keys, &[]);
    assert_eq!(res[0].1.as_ref().map(decode_marker), Some((1, 9)));
    assert_eq!(c.cache_len(), 0, "cache must be pruned once LST covers the write");
    assert!(c.stats().cache_pruned > 0);
}

#[test]
fn monotonic_reads_across_coordinator_partitions() {
    // Two back-to-back read-only transactions from the same session use
    // snapshot piggybacking (lst_c/rst_c), so even against a coordinator
    // whose local watermark lags, the snapshot never goes backwards.
    let mut net = WrenNet::new(1, 4);
    let mut writer = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let keys = keys_on_distinct_partitions(4, 1);

    for seq in 1..=5u32 {
        run_tx(&mut net, &mut writer, &[], &[(keys[0], marker(1, seq))]);
        net.stabilize(2);
    }

    // Reader bounces between two coordinators; observed seq must never
    // decrease.
    let mut reader_a = WrenClient::new(ClientId(2), ServerId::new(0, 1));
    let mut last_seen = 0u32;
    for round in 0..6 {
        let (res, _) = run_tx(&mut net, &mut reader_a, &keys, &[]);
        if let Some((_, seq)) = res[0].1.as_ref().map(decode_marker) {
            assert!(
                seq >= last_seen,
                "monotonic reads violated at round {round}: {seq} < {last_seen}"
            );
            last_seen = seq;
        }
        net.stabilize(1);
    }
    assert!(last_seen > 0, "reader should eventually observe the writes");
}
