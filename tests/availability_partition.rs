//! Availability under inter-DC network partitions.
//!
//! The paper's headline property (§II-B): "a client operation never blocks
//! as the result of a network partition between DCs". Wren transactions
//! run entirely inside one DC — start, reads, 2PC commit — so cutting all
//! cross-DC links must leave every DC fully operational, and healing must
//! restore convergence and causality.

mod common;

use common::{decode_marker, keys_on_distinct_partitions, marker, run_tx, WrenNet};
use wren::core::WrenClient;
use wren::protocol::{ClientId, ServerId};

#[test]
fn transactions_commit_during_partition() {
    let mut net = WrenNet::new(2, 2);
    let keys = keys_on_distinct_partitions(2, 2);
    let mut alice = WrenClient::new(ClientId(1), ServerId::new(0, 0)); // DC 0
    let mut bob = WrenClient::new(ClientId(2), ServerId::new(1, 0)); // DC 1

    net.stabilize(2);
    net.partitioned = true; // cut every cross-DC link

    // Both DCs keep committing multi-partition transactions and reading —
    // nothing blocks, nothing fails.
    for i in 1..=10u32 {
        let (res_a, ct_a) = run_tx(&mut net, &mut alice, &[keys[0]], &[(keys[0], marker(1, i))]);
        assert!(!ct_a.is_zero(), "DC0 commit must succeed during partition");
        let (res_b, ct_b) = run_tx(&mut net, &mut bob, &[keys[1]], &[(keys[1], marker(2, i))]);
        assert!(!ct_b.is_zero(), "DC1 commit must succeed during partition");
        let _ = (res_a, res_b);
        net.stabilize(1); // local ticks still run; cross-DC output is withheld
    }

    // Each client still reads its own writes via cache + local snapshot.
    let (res, _) = run_tx(&mut net, &mut alice, &[keys[0]], &[]);
    assert_eq!(
        res[0].1.as_ref().map(decode_marker),
        Some((1, 10)),
        "alice must see her latest write during the partition"
    );

    // Remote updates are (of course) not visible yet.
    let (res, _) = run_tx(&mut net, &mut alice, &[keys[1]], &[]);
    let saw = res[0].1.as_ref().map(decode_marker);
    assert!(
        saw.is_none() || saw.unwrap().0 == 1,
        "no DC1 update can be visible in DC0 while partitioned"
    );
}

#[test]
fn healing_restores_convergence() {
    let mut net = WrenNet::new(3, 2);
    let keys = keys_on_distinct_partitions(2, 2);
    let mut writers: Vec<WrenClient> = (0..3)
        .map(|dc| WrenClient::new(ClientId(10 + dc as u32), ServerId::new(dc, 0)))
        .collect();

    net.stabilize(2);
    net.partitioned = true;

    // Divergent writes in every DC while partitioned.
    for (i, w) in writers.iter_mut().enumerate() {
        for seq in 1..=5u32 {
            let (_, ct) = run_tx(
                &mut net,
                w,
                &[],
                &[(keys[0], marker(10 + i as u32, seq)), (keys[1], marker(10 + i as u32, seq))],
            );
            assert!(!ct.is_zero());
            net.stabilize(1);
        }
    }

    // Heal: withheld replication/heartbeat traffic is delivered in order.
    net.heal();
    net.stabilize(8);

    // All six replicas converge to one LWW winner on both keys, and the
    // winner is identical everywhere.
    let mut winners = Vec::new();
    for dc in 0..3u8 {
        let mut fresh = WrenClient::new(ClientId(90 + dc as u32), ServerId::new(dc, 0));
        let (res, _) = run_tx(&mut net, &mut fresh, &[keys[0], keys[1]], &[]);
        let w0 = res.iter().find(|(k, _)| *k == keys[0]).unwrap().1.clone();
        let w1 = res.iter().find(|(k, _)| *k == keys[1]).unwrap().1.clone();
        assert!(w0.is_some() && w1.is_some(), "writes lost after heal");
        // Both keys were always written together → atomicity demands the
        // same winner on both.
        assert_eq!(
            decode_marker(w0.as_ref().unwrap()),
            decode_marker(w1.as_ref().unwrap()),
            "atomic pair diverged in DC {dc}"
        );
        winners.push(decode_marker(&w0.unwrap()));
    }
    assert!(
        winners.windows(2).all(|w| w[0] == w[1]),
        "DCs converged to different winners: {winners:?}"
    );
}

#[test]
fn remote_visibility_stalls_but_local_advances_during_partition() {
    let mut net = WrenNet::new(2, 1);
    let mut alice = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    net.stabilize(2);

    let lst_before = net.server(ServerId::new(0, 0)).lst();
    let rst_before = net.server(ServerId::new(0, 0)).rst();

    net.partitioned = true;
    for seq in 1..=5 {
        run_tx(&mut net, &mut alice, &[], &[(wren::protocol::Key(0), marker(1, seq))]);
        net.stabilize(2);
    }

    let srv = net.server(ServerId::new(0, 0));
    assert!(
        srv.lst() > lst_before,
        "local stable time must keep advancing during a partition"
    );
    assert_eq!(
        srv.rst(),
        rst_before,
        "remote stable time cannot advance without remote heartbeats"
    );

    net.heal();
    net.stabilize(4);
    assert!(
        net.server(ServerId::new(0, 0)).rst() > rst_before,
        "healing must resume RST progress"
    );
}
