//! The merged observability surface, end to end: after a durable
//! loopback (TCP) run, [`Cluster::metrics`] must hold non-zero counts
//! in every stage histogram the engines record on their hot paths —
//! commit stages, read slices, WAL fsyncs, visibility lag — plus the
//! fabric's socket-boundary counters and the session-op latencies; the
//! snapshot must render to Prometheus text and diff cleanly; and the
//! per-partition tx-lifecycle trace rings must hold the run's protocol
//! events in order.

use bytes::Bytes;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use wren::protocol::Key;
use wren::rt::{Cluster, ClusterBuilder, FsyncPolicy, TxEvent};

fn bval(i: u64) -> Bytes {
    Bytes::from(i.to_le_bytes().to_vec())
}

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wren-obs-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs enough traffic through `cluster` that every instrumented stage
/// fires: cross-partition writes (2PC prepare/decide, WAL appends,
/// replication applies), server-fetched reads (slices), and a remote
/// reader polling until replication + stabilization deliver the writes
/// (stable raises → visibility-lag samples).
fn drive(cluster: &Cluster) -> HashMap<Key, u64> {
    let keys: Vec<Key> = (0..8u64).map(Key).collect();
    let mut writer = cluster.session(0);
    let mut oracle = HashMap::new();
    for round in 1..=10u64 {
        writer.begin().unwrap();
        for (ki, key) in keys.iter().enumerate() {
            let v = round * 100 + ki as u64;
            writer.write(*key, bval(v));
            oracle.insert(*key, v);
        }
        writer.commit().unwrap();
    }
    // A fresh remote-DC session has nothing cached: its reads are
    // server-fetched slices at the (lagging) stable snapshot. Poll
    // until the last round is visible there.
    let mut reader = cluster.session(cluster.n_dcs() - 1);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        reader.begin().unwrap();
        let got = reader.read(&keys).unwrap();
        let _ = reader.commit();
        let ok = got.iter().all(|(k, v)| {
            v.as_ref()
                .map(|b| u64::from_le_bytes(b.as_ref().try_into().unwrap()))
                == Some(oracle[k])
        });
        if ok {
            return oracle;
        }
        assert!(
            Instant::now() < deadline,
            "remote DC never converged; last snapshot {got:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The tentpole's acceptance check: a durable loopback run leaves
/// non-zero counts in the commit-stage, read, WAL-fsync and
/// visibility-lag histograms of the merged snapshot — and in the
/// session / fabric layers recorded around them.
#[test]
fn merged_snapshot_covers_every_layer_after_loopback_run() {
    let root = tmp_root("layers");
    let cluster = ClusterBuilder::new()
        .dcs(2)
        .partitions(2)
        .tcp()
        .durable(&root)
        .fsync(FsyncPolicy::Always)
        .replication_tick(Duration::from_millis(1))
        .gossip_tick(Duration::from_millis(2))
        // Exercise the delta-logger thread too (output goes to stderr;
        // the assertion is that it runs and stops cleanly).
        .metrics_every(Duration::from_millis(50))
        .build();

    let before = cluster.metrics();
    drive(&cluster);
    let snap = cluster.metrics();

    // Engine hot paths, merged across partitions (unprefixed names).
    for h in [
        "commit_prepare_micros",
        "commit_decide_micros",
        "commit_apply_micros",
        "read_slice_micros",
        "wal_fsync_micros",
        "wal_append_bytes",
        // Group-commit width: under `Always` every commit point syncs
        // alone, so the histogram records a stream of 1s — present and
        // non-empty is the contract here; width > 1 is the Window
        // test's business.
        "wal_group_commit_size",
        // Vectored outbox drains: every writev records how many frames
        // it completed.
        "fabric_writev_frames_per_call",
        "replication_batch_txs",
        "visibility_lag_local_micros",
        "visibility_lag_remote_micros",
        // Session-side operation latencies.
        "session_begin_micros",
        "session_read_micros",
        "session_commit_micros",
    ] {
        let hist = snap
            .histogram(h)
            .unwrap_or_else(|| panic!("histogram {h} missing from the merged snapshot"));
        assert!(hist.count > 0, "histogram {h} recorded nothing");
        assert!(hist.max >= hist.p50(), "histogram {h} has inconsistent stats");
    }
    // Socket boundary: frames flowed both ways, connections were made.
    for c in ["tcp_frames_out", "tcp_frames_in", "tcp_bytes_out", "tcp_bytes_in", "tcp_conns_accepted"] {
        assert!(snap.counter(c) > 0, "fabric counter {c} is zero");
    }
    assert_eq!(snap.counter("tcp_dropped_frames"), 0, "healthy run dropped frames");
    assert!(snap.counter("slices_served") > 0, "no slices served");
    assert!(snap.counter("keys_read") > 0, "no keys read");

    // The snapshot diffs cleanly: the delta is exactly what moved
    // between the two snapshots (gossip frames were already flowing
    // when `before` was taken, so the delta is a strict subtraction).
    let delta = snap.diff(&before);
    assert_eq!(
        delta.counter("tcp_frames_out"),
        snap.counter("tcp_frames_out") - before.counter("tcp_frames_out")
    );
    let prep_before = before.histogram("commit_prepare_micros").map_or(0, |h| h.count);
    assert_eq!(
        delta.histogram("commit_prepare_micros").unwrap().count,
        snap.histogram("commit_prepare_micros").unwrap().count - prep_before
    );
    assert!(delta.histogram("commit_prepare_micros").unwrap().count > 0);

    // Prometheus exposition renders every layer with stable series.
    let page = snap.render_prometheus();
    for needle in [
        "# TYPE commit_prepare_micros summary",
        "commit_prepare_micros{quantile=\"0.99\"}",
        "wal_fsync_micros_count",
        "# TYPE tcp_frames_out counter",
        "session_commit_micros{quantile=\"0.5\"}",
    ] {
        assert!(page.contains(needle), "exposition page lacks {needle:?}:\n{page}");
    }

    cluster.stop();
    let _ = std::fs::remove_dir_all(&root);
}

/// The tx-lifecycle trace rings: after a run, every partition's ring
/// holds real protocol history — coordinators show begins and commit
/// decisions, every partition shows stable raises — and the dump is
/// ordered oldest-first.
#[test]
fn trace_rings_hold_the_runs_lifecycle() {
    let cluster = ClusterBuilder::new().dcs(1).partitions(2).build();
    let mut s = cluster.session(0);
    for i in 0..20u64 {
        s.begin().unwrap();
        s.write(Key(i), bval(i));
        s.commit().unwrap();
    }
    // Let replication install and stabilization raise the cut.
    std::thread::sleep(Duration::from_millis(50));

    let traces = cluster.dump_traces();
    assert_eq!(traces.len(), 2);
    let all: Vec<&TxEvent> = traces.iter().flat_map(|(_, evs)| evs).collect();
    assert!(
        all.iter().any(|e| matches!(e, TxEvent::TxBegin { .. })),
        "no TxBegin anywhere: {all:?}"
    );
    assert!(
        all.iter().any(|e| matches!(e, TxEvent::Decided { .. })),
        "no commit decision anywhere: {all:?}"
    );
    assert!(
        all.iter().any(|e| matches!(e, TxEvent::Applied { .. })),
        "no replication apply anywhere: {all:?}"
    );
    assert!(
        all.iter().any(|e| matches!(e, TxEvent::Stable { .. })),
        "no stable raise anywhere: {all:?}"
    );
    cluster.stop();
}
