//! Client migration between DCs: the extension the paper sketches in
//! §II-A footnote 1 — "Wren can be extended to allow a client c to move
//! to a different DC by blocking c until the last snapshot seen by c has
//! been installed in the new DC."

mod common;

use common::{decode_marker, marker, run_tx, WrenNet};
use wren::core::WrenClient;
use wren::protocol::{ClientId, Key, ServerId};

#[test]
fn migration_waits_for_new_dc_to_catch_up() {
    let mut net = WrenNet::new(2, 2);
    let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));

    // Write in DC 0, then migrate to DC 1 before replication happens.
    let (_, ct) = run_tx(&mut net, &mut c, &[], &[(Key(0), marker(1, 7))]);
    assert!(!ct.is_zero());

    c.migrate_to(ServerId::new(1, 0));
    assert!(!c.migration_ready());

    // First probe: DC 1 has not installed the write → not ready.
    let id = c.id();
    let coord = c.coordinator();
    net.from_client(id, coord, c.start());
    c.on_start_resp(net.client_resp(id));
    assert!(!c.migration_ready(), "DC 1 cannot be ready before replication");
    net.from_client(id, coord, c.commit());
    c.on_commit_resp(net.client_resp(id));

    // Let replication + stabilization run.
    net.stabilize(6);

    net.from_client(id, coord, c.start());
    c.on_start_resp(net.client_resp(id));
    assert!(c.migration_ready(), "DC 1 caught up: migration completes");
    assert_eq!(c.cache_len(), 0, "cache is dropped once the snapshot covers it");

    // Read-your-writes across the migration: the value now comes from
    // DC 1's replicated store, not the (cleared) cache.
    let outcome = c.read(&[Key(0)]);
    let req = outcome.request.expect("must be a server read");
    net.from_client(id, coord, req);
    let res = c.on_read_resp(net.client_resp(id));
    assert_eq!(
        res[0].1.as_ref().map(decode_marker),
        Some((1, 7)),
        "migrated client must still read its own write"
    );
    net.from_client(id, coord, c.commit());
    c.on_commit_resp(net.client_resp(id));
}

#[test]
#[should_panic(expected = "session is migrating")]
fn reads_are_rejected_while_migrating() {
    let mut net = WrenNet::new(2, 1);
    let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    run_tx(&mut net, &mut c, &[], &[(Key(0), marker(1, 1))]);

    c.migrate_to(ServerId::new(1, 0));
    let id = c.id();
    let coord = c.coordinator();
    net.from_client(id, coord, c.start());
    c.on_start_resp(net.client_resp(id));
    assert!(!c.migration_ready());
    let _ = c.read(&[Key(0)]); // must panic: unsafe snapshot
}

#[test]
fn migration_within_same_dc_is_instant_after_stabilization() {
    let mut net = WrenNet::new(1, 2);
    let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    run_tx(&mut net, &mut c, &[], &[(Key(0), marker(1, 1))]);
    net.stabilize(3);

    // "Migrate" to the other partition of the same DC: the floor is the
    // local write; LST covers it, and crucially RST does too only via the
    // remote heartbeats — single-DC systems have RST = ∞-like behavior.
    // Run one transaction first so lst/rst reflect the stabilized state.
    run_tx(&mut net, &mut c, &[Key(0)], &[]);
    c.migrate_to(ServerId::new(0, 1));
    let id = c.id();
    let coord = c.coordinator();
    let mut attempts = 0;
    while !c.migration_ready() {
        net.from_client(id, coord, c.start());
        c.on_start_resp(net.client_resp(id));
        let ready = c.migration_ready();
        net.from_client(id, coord, c.commit());
        c.on_commit_resp(net.client_resp(id));
        if !ready {
            net.stabilize(2);
        }
        attempts += 1;
        assert!(attempts < 50, "same-DC migration never completed");
    }
}

#[test]
fn rt_session_migrates_across_dcs() {
    use bytes::Bytes;
    use wren::rt::ClusterBuilder;

    let cluster = ClusterBuilder::new().dcs(2).partitions(2).build();
    let mut s = cluster.session(0);
    s.begin().unwrap();
    s.write(Key(5), Bytes::from_static(b"moved"));
    s.commit().unwrap();

    let probes = s.migrate(ServerId::new(1, 0)).expect("migration succeeds");
    assert!(probes >= 1);

    s.begin().unwrap();
    assert_eq!(
        s.read_one(Key(5)).unwrap(),
        Some(Bytes::from_static(b"moved")),
        "read-your-writes must hold across the migration"
    );
    s.commit().unwrap();
    cluster.shutdown();
}
