//! The loopback-cluster consistency oracle: the SAME causal-closure,
//! atomic-visibility and session-guarantee checks the synchronous pump
//! enforces (`causal_invariants.rs`, `session_guarantees.rs`), run
//! against a **live TCP-backed cluster on 127.0.0.1** — every protocol
//! hop encoded, framed, written to a socket, read back and decoded —
//! and, for calibration, against the channel-transport cluster with the
//! same schedule.
//!
//! Wren's reads are nonblocking by construction (a read slice at a
//! stable snapshot is served straight from storage; the server has no
//! deferred-read queue, unlike Cure). At this level that surfaces as:
//! no read ever times out or retries, across every schedule below —
//! which the driver asserts on every single read, along with identical
//! scripted results across the two transports.

mod common;

use common::oracle::{Oracle, SessionOracle};
use common::decode_marker;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use wren::protocol::Key;
use wren::rt::{Backend, Cluster, ClusterBuilder, Session};

/// The reactor fabric over the io_uring backend. Builder-shaped so it
/// can sit in the same fn-pointer tables as [`ClusterBuilder::tcp`];
/// on hosts without io_uring the cluster falls back to epoll and
/// [`uring_skipped`] lets callers notice.
fn tcp_uring(b: ClusterBuilder) -> ClusterBuilder {
    b.tcp().backend(Backend::Uring)
}

/// True (with a loud notice) when `cluster` was asked for io_uring but
/// fell back — the run is still a valid epoll run, but it did not
/// exercise the uring backend.
fn uring_skipped(cluster: &Cluster, test: &str) -> bool {
    if cluster.tcp_backend() == Some(Backend::Epoll) {
        eprintln!("SKIP {test}: io_uring unavailable, uring leg ran on the epoll fallback");
        true
    } else {
        false
    }
}

/// Drives `txs` random transactions over live sessions (round-robin
/// random interleaving, one in flight at a time so the oracle has a
/// total commit order), checking every read against the oracle.
///
/// Returns the number of server-round-trip reads performed; every one
/// of them completed without blocking (a blocked read would surface as
/// an `RtError::Timeout`, which panics the driver here).
fn random_live_history(cluster: &Cluster, seed: u64, sessions_per_dc: usize, txs: usize) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let key_pool: Vec<Key> = (0..48).map(Key).collect();

    let mut sessions: Vec<Session> = Vec::new();
    let mut oracles: Vec<SessionOracle> = Vec::new();
    for dc in 0..cluster.n_dcs() {
        for _ in 0..sessions_per_dc {
            sessions.push(cluster.session(dc));
            oracles.push(SessionOracle::new());
        }
    }
    let mut oracle = Oracle::default();
    let mut server_reads = 0u64;

    for _ in 0..txs {
        // Let replication/gossip ticks interleave with transactions.
        if rng.gen_range(0..4) == 0 {
            std::thread::sleep(Duration::from_millis(rng.gen_range(1..4)));
        }

        let ci = rng.gen_range(0..sessions.len());
        let n_reads = rng.gen_range(1..6);
        let n_writes = rng.gen_range(1..4);
        let reads: Vec<Key> = (0..n_reads)
            .map(|_| key_pool[rng.gen_range(0..key_pool.len())])
            .collect();
        let mut writes: Vec<Key> = (0..n_writes)
            .map(|_| key_pool[rng.gen_range(0..key_pool.len())])
            .collect();
        writes.dedup();

        let so = &mut oracles[ci];
        so.seq += 1;
        let me = (sessions[ci].id().0, so.seq);

        let session = &mut sessions[ci];
        session.begin().expect("begin never blocks");
        let results = session
            .read(&reads)
            .expect("nonblocking reads: no read may time out");
        server_reads += 1;
        for k in &writes {
            session.write(*k, common::marker(me.0, me.1));
        }
        let ct = session.commit().expect("commit");

        let observed: Vec<(Key, Option<(u32, u32)>)> = results
            .iter()
            .map(|(k, v)| (*k, v.as_ref().map(decode_marker)))
            .collect();
        so.observe(&oracle, &observed);
        let dc = session.coordinator().dc.0;
        so.record_commit(&mut oracle, me, ct, dc, writes);
    }
    server_reads
}

/// The headline check: the full causal/session oracle against a
/// TCP-backed loopback cluster, multi-DC, with zero blocked reads and
/// a loss-free transport — over **all** socket fabrics (the epoll
/// reactor behind [`ClusterBuilder::tcp`], the per-connection-thread
/// fabric behind [`ClusterBuilder::tcp_threaded`], and the reactor on
/// the io_uring backend where the kernel offers it).
#[test]
fn tcp_loopback_cluster_passes_causal_oracle() {
    for (seed, fabric) in [
        (42u64, ClusterBuilder::tcp as fn(ClusterBuilder) -> ClusterBuilder),
        (43u64, ClusterBuilder::tcp_threaded),
        (44u64, tcp_uring),
    ] {
        let cluster = fabric(ClusterBuilder::new().dcs(2).partitions(2)).build();
        if seed == 44 {
            // The uring leg: a fallback run is still a valid oracle
            // pass, just not an io_uring one — say so.
            let _ = uring_skipped(&cluster, "tcp_loopback_cluster_passes_causal_oracle");
        }
        let reads = random_live_history(&cluster, seed, 2, 150);
        assert!(reads > 0);
        assert_eq!(
            cluster.tcp_dropped_frames(),
            0,
            "the transport must be loss-free while the oracle holds"
        );
        let stats = cluster.stop();
        let slices: u64 = stats.iter().map(|s| s.slices_served).sum();
        assert!(slices > 0, "reads were served by the engines");
    }
}

/// Single-DC, more partitions, read workers on the floor and the
/// ceiling, reactor pools of one and three threads — the oracle must
/// hold in every engine × fabric configuration.
#[test]
fn tcp_oracle_across_engine_configs() {
    for read_workers in [0usize, 3] {
        for reactor_threads in [1usize, 3] {
            let cluster = ClusterBuilder::new()
                .dcs(1)
                .partitions(4)
                .read_workers(read_workers)
                .reactor_threads(reactor_threads)
                .tcp()
                .build();
            random_live_history(
                &cluster,
                7 + read_workers as u64 + 13 * reactor_threads as u64,
                3,
                120,
            );
            assert_eq!(cluster.tcp_dropped_frames(), 0);
            cluster.stop();
        }
    }
}

/// The same seeded schedule against all four transports — in-process
/// channels, threaded TCP, epoll-reactor TCP, uring-reactor TCP: the
/// oracle holds on each, and the deterministic fragment (a session's
/// own final reads after quiescence) is identical across all of them.
#[test]
fn channel_and_tcp_agree_on_scripted_results() {
    fn scripted(cluster: &Cluster) -> Vec<(Key, Option<Vec<u8>>)> {
        let keys: Vec<Key> = (0..12).map(Key).collect();
        let mut writer = cluster.session(0);
        for generation in 1..=3u32 {
            writer.begin().unwrap();
            for k in &keys {
                writer.write(*k, common::marker(9_999, generation));
            }
            writer.commit().unwrap();
        }
        // A fresh session (server-served reads, no write-set shortcut)
        // polls until the final generation is stable everywhere.
        let mut reader = cluster.session(0);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            reader.begin().unwrap();
            let all = reader.read(&keys).unwrap();
            reader.commit().unwrap();
            let done = all
                .iter()
                .all(|(_, v)| v.as_ref().map(decode_marker) == Some((9_999, 3)));
            if done {
                return all
                    .into_iter()
                    .map(|(k, v)| (k, v.map(|b| b.to_vec())))
                    .collect();
            }
            assert!(
                Instant::now() < deadline,
                "final generation never stabilized"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let channel_cluster = ClusterBuilder::new().dcs(1).partitions(3).build();
    let threaded_cluster = ClusterBuilder::new().dcs(1).partitions(3).tcp_threaded().build();
    let reactor_cluster = ClusterBuilder::new().dcs(1).partitions(3).tcp().build();
    let uring_cluster = tcp_uring(ClusterBuilder::new().dcs(1).partitions(3)).build();
    let _ = uring_skipped(&uring_cluster, "channel_and_tcp_agree_on_scripted_results");
    let via_channel = scripted(&channel_cluster);
    let via_threaded = scripted(&threaded_cluster);
    let via_reactor = scripted(&reactor_cluster);
    let via_uring = scripted(&uring_cluster);
    assert_eq!(
        via_channel, via_threaded,
        "the threaded fabric must not change what a quiesced cluster serves"
    );
    assert_eq!(
        via_channel, via_reactor,
        "the reactor fabric must not change what a quiesced cluster serves"
    );
    assert_eq!(
        via_channel, via_uring,
        "the uring backend must not change what a quiesced cluster serves"
    );
    assert_eq!(reactor_cluster.tcp_dropped_frames(), 0);
    assert_eq!(uring_cluster.tcp_dropped_frames(), 0);
    channel_cluster.stop();
    threaded_cluster.stop();
    reactor_cluster.stop();
    uring_cluster.stop();
}

/// The explicit session guarantees (`session_guarantees.rs` logic) over
/// TCP: monotonic writes and writes-follow-reads, enforced through
/// commit-timestamp ordering on a live socket-backed cluster.
#[test]
fn tcp_session_guarantees_explicit() {
    let cluster = ClusterBuilder::new().dcs(1).partitions(2).tcp().build();

    // Monotonic writes: one session's commit timestamps strictly
    // increase, so LWW can never expose an older own-write.
    let mut s = cluster.session(0);
    let mut last_ct = wren::clock::Timestamp::ZERO;
    for _ in 0..15 {
        s.begin().unwrap();
        s.write(Key(5), common::marker(1, 1));
        let ct = s.commit().unwrap();
        assert!(ct > last_ct, "commit timestamps must increase in session order");
        last_ct = ct;
    }

    // Writes-follow-reads: bob reads alice's x, then writes y; ct(y)
    // must exceed ct(x), so any snapshot containing y contains x.
    let mut alice = cluster.session(0);
    let mut bob = cluster.session(0);
    alice.begin().unwrap();
    alice.write(Key(100), common::marker(2, 1));
    let ct_x = alice.commit().unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        bob.begin().unwrap();
        let saw = bob.read_one(Key(100)).unwrap();
        bob.commit().unwrap();
        if saw.is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "x never became visible to bob");
        std::thread::sleep(Duration::from_millis(2));
    }
    bob.begin().unwrap();
    assert!(bob.read_one(Key(100)).unwrap().is_some());
    bob.write(Key(101), common::marker(3, 1));
    let ct_y = bob.commit().unwrap();
    assert!(
        ct_y > ct_x,
        "writes-follow-reads: ct(y)={ct_y:?} must exceed ct(x)={ct_x:?}"
    );

    drop(s);
    drop(alice);
    drop(bob);
    cluster.stop();
}
