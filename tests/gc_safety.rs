//! Garbage-collection safety: GC must bound the version count without
//! ever collecting a version that an active or future snapshot could
//! still read.

mod common;

use common::{decode_marker, marker, run_tx, WrenNet};
use wren::core::{WrenClient, WrenConfig};
use wren::protocol::{ClientId, Key, ServerId};

#[test]
fn gc_bounds_version_chains_under_overwrites() {
    let mut net = WrenNet::new(1, 2);
    let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));

    // Overwrite one key many times with GC running periodically.
    for i in 1..=100u32 {
        run_tx(&mut net, &mut c, &[], &[(Key(0), marker(1, i))]);
        net.stabilize(1);
        if i % 10 == 0 {
            net.tick_gc(1_000);
            net.tick_gc(1_000); // second round: watermark has propagated
        }
    }
    let p = Key(0).partition(2);
    let versions = net.server(ServerId::new(0, p.0)).store().stats().versions;
    assert!(
        versions < 30,
        "GC failed to bound the chain: {versions} versions retained"
    );

    // The latest version is intact.
    let (res, _) = run_tx(&mut net, &mut c, &[Key(0)], &[]);
    assert_eq!(res[0].1.as_ref().map(decode_marker), Some((1, 100)));
}

#[test]
fn gc_never_collects_below_an_active_snapshot() {
    let mut net = WrenNet::new(1, 2);
    let mut writer = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let mut holder = WrenClient::new(ClientId(2), ServerId::new(0, 1));

    // Baseline version.
    run_tx(&mut net, &mut writer, &[], &[(Key(0), marker(1, 1))]);
    net.stabilize(3);

    // `holder` opens a transaction pinned at the current snapshot and
    // KEEPS IT OPEN while new versions and GC churn.
    let hid = holder.id();
    let hcoord = holder.coordinator();
    net.from_client(hid, hcoord, holder.start());
    holder.on_start_resp(net.client_resp(hid));

    for i in 2..=20u32 {
        run_tx(&mut net, &mut writer, &[], &[(Key(0), marker(1, i))]);
        net.stabilize(1);
        net.tick_gc(500);
    }

    // The held transaction reads now: it must still see a version within
    // its (old) snapshot — GC was not allowed to collect it.
    let outcome = holder.read(&[Key(0)]);
    let req = outcome.request.expect("server read");
    net.from_client(hid, hcoord, req);
    let res = holder.on_read_resp(net.client_resp(hid));
    let seen = res[0].1.as_ref().map(decode_marker);
    assert_eq!(
        seen,
        Some((1, 1)),
        "the pinned snapshot must still read its version after GC churn"
    );
    net.from_client(hid, hcoord, holder.commit());
    holder.on_commit_resp(net.client_resp(hid));
}

#[test]
fn gc_interval_zero_disables_collection() {
    let cfg = WrenConfig {
        gc_tick_micros: 0,
        ..WrenConfig::new(1, 1)
    };
    let mut net = WrenNet::with_config(cfg);
    let mut c = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    for i in 1..=15u32 {
        run_tx(&mut net, &mut c, &[], &[(Key(0), marker(1, i))]);
        net.stabilize(1);
    }
    // Never ticked GC: all versions retained.
    let versions = net.server(ServerId::new(0, 0)).store().stats().versions;
    assert_eq!(versions, 15);
}
