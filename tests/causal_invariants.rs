//! Randomized-history invariant checking: many seeded schedules of
//! concurrent clients against a multi-DC Wren cluster, with an external
//! oracle validating **causal closure**, **atomic visibility** and the
//! four session guarantees on every single read.
//!
//! The oracle itself lives in [`common::oracle`] — the TCP transport
//! suite (`tcp_cluster.rs`) runs the same checks against a live
//! socket-backed cluster.

mod common;

use common::oracle::{Oracle, SessionOracle};
use common::{decode_marker, keys_on_distinct_partitions, marker, run_tx, WrenNet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wren::core::WrenClient;
use wren::protocol::{ClientId, Key, ServerId};

fn random_history(seed: u64, m: u8, n: u16, clients_per_dc: usize, txs: usize) {
    random_history_cfg(seed, wren::core::WrenConfig::new(m, n), clients_per_dc, txs)
}

fn random_history_cfg(
    seed: u64,
    cfg: wren::core::WrenConfig,
    clients_per_dc: usize,
    txs: usize,
) {
    let (m, n) = (cfg.n_dcs, cfg.n_partitions);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = WrenNet::with_config(cfg);
    let key_pool: Vec<Key> = (0..64).map(Key).collect();

    let mut clients: Vec<WrenClient> = Vec::new();
    let mut sessions: Vec<SessionOracle> = Vec::new();
    for dc in 0..m {
        for c in 0..clients_per_dc {
            let id = ClientId((dc as u32) * 100 + c as u32);
            let coord = ServerId::new(dc, rng.gen_range(0..n));
            clients.push(WrenClient::new(id, coord));
            sessions.push(SessionOracle::new());
        }
    }
    let mut oracle = Oracle::default();

    for _ in 0..txs {
        // Random interleaving of protocol progress and transactions.
        match rng.gen_range(0..10) {
            0..=2 => net.tick_replication(rng.gen_range(100..1500)),
            3..=4 => net.tick_gossip(rng.gen_range(100..1500)),
            _ => {}
        }

        let ci = rng.gen_range(0..clients.len());
        let n_reads = rng.gen_range(1..6);
        let n_writes = rng.gen_range(1..4);
        let reads: Vec<Key> = (0..n_reads)
            .map(|_| key_pool[rng.gen_range(0..key_pool.len())])
            .collect();
        let mut writes: Vec<Key> = (0..n_writes)
            .map(|_| key_pool[rng.gen_range(0..key_pool.len())])
            .collect();
        writes.dedup();

        let session = &mut sessions[ci];
        session.seq += 1;
        let me = (clients[ci].id().0, session.seq);
        let kvs: Vec<_> = writes.iter().map(|k| (*k, marker(me.0, me.1))).collect();

        let (results, ct) = run_tx(&mut net, &mut clients[ci], &reads, &kvs);

        // Decode observations, check every invariant, record the commit.
        let observed: Vec<(Key, Option<(u32, u32)>)> = results
            .iter()
            .map(|(k, v)| (*k, v.as_ref().map(decode_marker)))
            .collect();
        session.observe(&oracle, &observed);
        let dc = clients[ci].coordinator().dc.0;
        session.record_commit(&mut oracle, me, ct, dc, writes);
    }
}

#[test]
fn random_histories_single_dc() {
    for seed in 0..6 {
        random_history(seed, 1, 4, 3, 120);
    }
}

#[test]
fn random_histories_three_dcs() {
    for seed in 0..6 {
        random_history(100 + seed, 3, 2, 2, 120);
    }
}

#[test]
fn random_histories_five_dcs_many_partitions() {
    random_history(7_777, 5, 4, 2, 150);
}

#[test]
fn random_histories_with_tree_gossip() {
    let cfg = wren::core::WrenConfig {
        gossip_fanout: 2,
        ..wren::core::WrenConfig::new(2, 7)
    };
    for seed in 0..4 {
        random_history_cfg(500 + seed, cfg, 2, 120);
    }
}

#[test]
fn cross_dc_causality_chain() {
    // A deliberately adversarial chain: A(dc0) writes x; B(dc1) reads x,
    // writes y; C(dc2) reads y and must then see x.
    let mut net = WrenNet::new(3, 2);
    let keys = keys_on_distinct_partitions(2, 2);
    let (x, y) = (keys[0], keys[1]);
    let mut a = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let mut b = WrenClient::new(ClientId(2), ServerId::new(1, 0));
    let mut c = WrenClient::new(ClientId(3), ServerId::new(2, 0));

    let (_, _) = run_tx(&mut net, &mut a, &[], &[(x, marker(1, 1))]);
    net.stabilize(6); // replicate x to dc1

    let (res, _) = run_tx(&mut net, &mut b, &[x], &[]);
    assert!(res[0].1.is_some(), "B must see x after stabilization");
    let (_, _) = run_tx(&mut net, &mut b, &[], &[(y, marker(2, 1))]);
    net.stabilize(6); // replicate y to dc2

    for _ in 0..10 {
        let (res, _) = run_tx(&mut net, &mut c, &[y, x], &[]);
        let saw_y = res.iter().find(|(k, _)| *k == y).unwrap().1.is_some();
        let saw_x = res.iter().find(|(k, _)| *k == x).unwrap().1.is_some();
        if saw_y {
            assert!(
                saw_x,
                "causality across DCs violated: y visible without its dependency x"
            );
        }
        net.stabilize(1);
    }
}
