//! Randomized-history invariant checking: many seeded schedules of
//! concurrent clients against a multi-DC Wren cluster, with an external
//! oracle validating **causal closure**, **atomic visibility** and the
//! four session guarantees on every single read.
//!
//! The oracle tracks, for every committed transaction, its write-set and
//! its causal dependencies (values it read + its session predecessor) and
//! checks that whenever a snapshot reveals a transaction T, it also
//! reveals (at least) everything T causally depends on — the paper's
//! §II-C definition of a causal snapshot.

mod common;

use common::{decode_marker, keys_on_distinct_partitions, marker, run_tx, WrenNet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use wren::clock::Timestamp;
use wren::core::WrenClient;
use wren::protocol::{ClientId, Key, ServerId};

/// Oracle record for one committed transaction.
#[derive(Debug, Clone)]
struct TxRecord {
    /// LWW order key of this transaction's writes: (ct, dc, seq-id).
    order: (Timestamp, u8, u32),
    /// Keys written.
    writes: Vec<Key>,
    /// Direct causal dependencies (other committed markers).
    deps: Vec<(u32, u32)>,
}

/// The oracle: every committed transaction by its (client, seq) marker.
#[derive(Default)]
struct Oracle {
    txs: HashMap<(u32, u32), TxRecord>,
}

impl Oracle {
    /// All transitive dependencies of `m`, including itself.
    fn causal_past(&self, m: (u32, u32)) -> HashSet<(u32, u32)> {
        let mut past = HashSet::new();
        let mut stack = vec![m];
        while let Some(cur) = stack.pop() {
            if past.insert(cur) {
                if let Some(rec) = self.txs.get(&cur) {
                    stack.extend(rec.deps.iter().copied());
                }
            }
        }
        past
    }

    /// Asserts that one transaction's reads form a causal snapshot.
    ///
    /// For every observed writer W and every transaction X in W's causal
    /// past that wrote a key `k` this transaction also read: the observed
    /// version of `k` must be X's write or something LWW-newer. (If the
    /// read returned `None`, X must not exist.)
    fn check_causal_snapshot(&self, observed: &[(Key, Option<(u32, u32)>)]) {
        let observed_map: HashMap<Key, Option<(u32, u32)>> =
            observed.iter().cloned().collect();
        for (_, seen) in observed {
            let Some(writer) = seen else { continue };
            for dep in self.causal_past(*writer) {
                let Some(dep_rec) = self.txs.get(&dep) else {
                    continue;
                };
                for k in &dep_rec.writes {
                    let Some(seen_for_k) = observed_map.get(k) else {
                        continue; // this tx did not read k
                    };
                    match seen_for_k {
                        None => panic!(
                            "causal violation: snapshot shows {writer:?} but read of \
                             {k:?} returned nothing, despite dependency {dep:?} writing it"
                        ),
                        Some(seen_writer) => {
                            let seen_order = self.txs[seen_writer].order;
                            assert!(
                                seen_order >= dep_rec.order,
                                "causal violation: snapshot shows {writer:?} (which \
                                 depends on {dep:?} writing {k:?} at {:?}) but the read \
                                 of {k:?} returned the older {seen_writer:?} at {:?}",
                                dep_rec.order,
                                seen_order
                            );
                        }
                    }
                }
            }
        }
    }

    /// Asserts atomic visibility: if the snapshot shows writer W for key
    /// k, then for every other key k2 ∈ W.writes that was also read, the
    /// observed version is W's or LWW-newer.
    fn check_atomicity(&self, observed: &[(Key, Option<(u32, u32)>)]) {
        let observed_map: HashMap<Key, Option<(u32, u32)>> =
            observed.iter().cloned().collect();
        for (_, seen) in observed {
            let Some(writer) = seen else { continue };
            let rec = &self.txs[writer];
            for k2 in &rec.writes {
                if let Some(seen2) = observed_map.get(k2) {
                    match seen2 {
                        None => panic!(
                            "atomicity violation: {writer:?} visible on one key but \
                             its write of {k2:?} is absent"
                        ),
                        Some(w2) => assert!(
                            self.txs[w2].order >= rec.order,
                            "atomicity violation: {writer:?} visible but {k2:?} shows \
                             older {w2:?}"
                        ),
                    }
                }
            }
        }
    }
}

/// One client's session state for the oracle.
struct SessionOracle {
    /// Last committed marker of this session (session order dependency).
    last_commit: Option<(u32, u32)>,
    /// Everything this session has observed (for read dependencies).
    observed: Vec<(u32, u32)>,
    /// Per key: the newest order key this session has ever observed
    /// (monotonic reads check).
    high_water: HashMap<Key, (Timestamp, u8, u32)>,
    /// Per key: this session's own latest write (read-your-writes check).
    own_writes: HashMap<Key, (u32, u32)>,
    seq: u32,
}

fn random_history(seed: u64, m: u8, n: u16, clients_per_dc: usize, txs: usize) {
    random_history_cfg(seed, wren::core::WrenConfig::new(m, n), clients_per_dc, txs)
}

fn random_history_cfg(
    seed: u64,
    cfg: wren::core::WrenConfig,
    clients_per_dc: usize,
    txs: usize,
) {
    let (m, n) = (cfg.n_dcs, cfg.n_partitions);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = WrenNet::with_config(cfg);
    let key_pool: Vec<Key> = (0..64).map(Key).collect();

    let mut clients: Vec<WrenClient> = Vec::new();
    let mut sessions: Vec<SessionOracle> = Vec::new();
    for dc in 0..m {
        for c in 0..clients_per_dc {
            let id = ClientId((dc as u32) * 100 + c as u32);
            let coord = ServerId::new(dc, rng.gen_range(0..n));
            clients.push(WrenClient::new(id, coord));
            sessions.push(SessionOracle {
                last_commit: None,
                observed: Vec::new(),
                high_water: HashMap::new(),
                own_writes: HashMap::new(),
                seq: 0,
            });
        }
    }
    let mut oracle = Oracle::default();

    for _ in 0..txs {
        // Random interleaving of protocol progress and transactions.
        match rng.gen_range(0..10) {
            0..=2 => net.tick_replication(rng.gen_range(100..1500)),
            3..=4 => net.tick_gossip(rng.gen_range(100..1500)),
            _ => {}
        }

        let ci = rng.gen_range(0..clients.len());
        let n_reads = rng.gen_range(1..6);
        let n_writes = rng.gen_range(1..4);
        let reads: Vec<Key> = (0..n_reads)
            .map(|_| key_pool[rng.gen_range(0..key_pool.len())])
            .collect();
        let mut writes: Vec<Key> = (0..n_writes)
            .map(|_| key_pool[rng.gen_range(0..key_pool.len())])
            .collect();
        writes.dedup();

        let session = &mut sessions[ci];
        session.seq += 1;
        let me = (clients[ci].id().0, session.seq);
        let kvs: Vec<_> = writes.iter().map(|k| (*k, marker(me.0, me.1))).collect();

        let (results, ct) = run_tx(&mut net, &mut clients[ci], &reads, &kvs);

        // Decode observations.
        let observed: Vec<(Key, Option<(u32, u32)>)> = results
            .iter()
            .map(|(k, v)| (*k, v.as_ref().map(decode_marker)))
            .collect();

        // ---- Invariant checks on this read snapshot ----
        oracle.check_causal_snapshot(&observed);
        oracle.check_atomicity(&observed);

        for (k, seen) in &observed {
            // Read-your-writes: must observe own write or newer.
            if let Some(own) = session.own_writes.get(k) {
                match seen {
                    None => panic!("read-your-writes violated: own write of {k:?} lost"),
                    Some(w) => {
                        let own_order = oracle.txs[own].order;
                        assert!(
                            oracle.txs[w].order >= own_order,
                            "read-your-writes violated on {k:?}: saw {w:?}, own {own:?}"
                        );
                    }
                }
            }
            // Monotonic reads per key.
            if let Some(w) = seen {
                let order = oracle.txs[w].order;
                if let Some(high) = session.high_water.get(k) {
                    assert!(
                        order >= *high,
                        "monotonic reads violated on {k:?}: {order:?} < {high:?}"
                    );
                }
                session.high_water.insert(*k, order);
                session.observed.push(*w);
            }
        }

        // ---- Record the committed transaction ----
        assert!(!ct.is_zero(), "update transaction must get a timestamp");
        let mut deps: Vec<(u32, u32)> = session.observed.clone();
        if let Some(prev) = session.last_commit {
            deps.push(prev);
        }
        deps.sort_unstable();
        deps.dedup();
        oracle.txs.insert(
            me,
            TxRecord {
                order: (ct, clients[ci].coordinator().dc.0, me.0),
                writes: writes.clone(),
                deps,
            },
        );
        session.last_commit = Some(me);
        for k in &writes {
            session.own_writes.insert(*k, me);
        }
    }
}

#[test]
fn random_histories_single_dc() {
    for seed in 0..6 {
        random_history(seed, 1, 4, 3, 120);
    }
}

#[test]
fn random_histories_three_dcs() {
    for seed in 0..6 {
        random_history(100 + seed, 3, 2, 2, 120);
    }
}

#[test]
fn random_histories_five_dcs_many_partitions() {
    random_history(7_777, 5, 4, 2, 150);
}

#[test]
fn random_histories_with_tree_gossip() {
    let cfg = wren::core::WrenConfig {
        gossip_fanout: 2,
        ..wren::core::WrenConfig::new(2, 7)
    };
    for seed in 0..4 {
        random_history_cfg(500 + seed, cfg, 2, 120);
    }
}

#[test]
fn cross_dc_causality_chain() {
    // A deliberately adversarial chain: A(dc0) writes x; B(dc1) reads x,
    // writes y; C(dc2) reads y and must then see x.
    let mut net = WrenNet::new(3, 2);
    let keys = keys_on_distinct_partitions(2, 2);
    let (x, y) = (keys[0], keys[1]);
    let mut a = WrenClient::new(ClientId(1), ServerId::new(0, 0));
    let mut b = WrenClient::new(ClientId(2), ServerId::new(1, 0));
    let mut c = WrenClient::new(ClientId(3), ServerId::new(2, 0));

    let (_, _) = run_tx(&mut net, &mut a, &[], &[(x, marker(1, 1))]);
    net.stabilize(6); // replicate x to dc1

    let (res, _) = run_tx(&mut net, &mut b, &[x], &[]);
    assert!(res[0].1.is_some(), "B must see x after stabilization");
    let (_, _) = run_tx(&mut net, &mut b, &[], &[(y, marker(2, 1))]);
    net.stabilize(6); // replicate y to dc2

    for _ in 0..10 {
        let (res, _) = run_tx(&mut net, &mut c, &[y, x], &[]);
        let saw_y = res.iter().find(|(k, _)| *k == y).unwrap().1.is_some();
        let saw_x = res.iter().find(|(k, _)| *k == x).unwrap().1.is_some();
        if saw_y {
            assert!(
                saw_x,
                "causality across DCs violated: y visible without its dependency x"
            );
        }
        net.stabilize(1);
    }
}
