//! Kill-and-restart crash-recovery oracle for the durable runtime.
//!
//! Each test runs a real multi-DC cluster with per-partition WALs, kills
//! a partition **abruptly** (no drain, no flush, no seal — the engine's
//! `RtMsg::Kill` path, the in-process stand-in for `kill -9`), restarts
//! it from disk, and diffs what the cluster serves afterwards against
//! the exact state it acknowledged before and during the outage.
//!
//! The oracle is writer-per-key: every key has a single writing session
//! and strictly increasing values, so the expected last-writer-wins
//! answer is known precisely — under `FsyncPolicy::Always` a recovered
//! cluster either converges every DC to it or durability lost an
//! acknowledged write.

use bytes::Bytes;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use wren::protocol::{Key, ServerId};
use wren::rt::{Cluster, ClusterBuilder, FsyncPolicy, Session};

fn bval(i: u64) -> Bytes {
    Bytes::from(i.to_le_bytes().to_vec())
}

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wren-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Allocates sessions until one lands on the wanted coordinator
/// (round-robin guarantees a hit within `n_partitions` tries). Tests
/// kill specific partitions, so writers must demonstrably not live on
/// the victim.
fn session_at(cluster: &Cluster, dc: u8, p: u16) -> Session {
    for _ in 0..cluster.n_partitions() {
        let s = cluster.session(dc);
        if s.coordinator() == ServerId::new(dc, p) {
            return s;
        }
    }
    unreachable!("round-robin must cycle through every partition");
}

/// Polls `read` until every `(key, value)` pair in `expected` is served
/// in a single snapshot, or panics at the deadline. Recovery, catch-up
/// and stabilization all lag real time, so the oracle is "converges
/// within `timeout`", not "immediate".
fn expect_converges(
    session: &mut Session,
    expected: &HashMap<Key, u64>,
    timeout: Duration,
    what: &str,
) {
    let deadline = Instant::now() + timeout;
    let keys: Vec<Key> = expected.keys().copied().collect();
    loop {
        session.begin().unwrap();
        let got = session.read(&keys).unwrap();
        session.commit().unwrap();
        let ok = got.iter().all(|(k, v)| {
            v.as_ref().map(|b| u64::from_le_bytes(b.as_ref().try_into().unwrap()))
                == Some(expected[k])
        });
        if ok {
            return;
        }
        if Instant::now() >= deadline {
            panic!(
                "{what}: did not converge to the acknowledged state; last snapshot {got:?}"
            );
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Commits `value` to `key` through `session`, updating the oracle map.
fn put(session: &mut Session, oracle: &mut HashMap<Key, u64>, key: Key, value: u64) {
    session.begin().unwrap();
    session.write(key, bval(value));
    session.commit().unwrap();
    oracle.insert(key, value);
}

/// The tentpole oracle: a partition dies mid-stream with `kill -9`
/// semantics, traffic continues around it, and after restart every DC —
/// the victim's included — must converge to exactly the acknowledged
/// writer-per-key state. The victim's sibling re-ships what died in the
/// dead process's inbox (catch-up), and the WAL re-materializes
/// everything the victim itself had acknowledged.
#[test]
fn kill_and_restart_preserves_acknowledged_writes() {
    let root = tmp_root("oracle");
    let mut cluster = ClusterBuilder::new()
        .dcs(2)
        .partitions(2)
        .durable(&root)
        .fsync(FsyncPolicy::Always)
        .checkpoint_interval(Duration::from_millis(25))
        .replication_tick(Duration::from_millis(1))
        .gossip_tick(Duration::from_millis(2))
        .session_timeout(Duration::from_secs(10))
        .build();

    // Writers on partitions that will stay alive: the victim is (1,1).
    let mut a = session_at(&cluster, 0, 0);
    let mut b = session_at(&cluster, 1, 0);
    let keys: Vec<Key> = (0..8u64).map(Key).collect();
    let mut oracle = HashMap::new();

    // Phase 1: both DCs write, checkpoints rotating underneath.
    for round in 1..=15u64 {
        for (ki, key) in keys.iter().enumerate() {
            let v = round * 1_000 + ki as u64;
            let s = if ki % 2 == 0 { &mut a } else { &mut b };
            put(s, &mut oracle, *key, v);
        }
        if round % 5 == 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // Phase 2: kill (1,1) abruptly; DC 0 keeps writing through the
    // outage (its replication batches to the victim die in the void).
    cluster.kill_partition(1, 1);
    for round in 16..=25u64 {
        for (ki, key) in keys.iter().enumerate() {
            if ki % 2 == 0 {
                put(&mut a, &mut oracle, *key, round * 1_000 + ki as u64);
            }
        }
    }

    // Phase 3: restart and let recovery + catch-up + stabilization run.
    cluster.restart_partition(1, 1);

    // The pre-kill DC-1 session must still work across the restart —
    // session guarantees survive: its own writes stay visible and new
    // commits are accepted.
    for round in 26..=30u64 {
        for (ki, key) in keys.iter().enumerate() {
            if ki % 2 == 1 {
                put(&mut b, &mut oracle, *key, round * 1_000 + ki as u64);
            }
        }
    }

    // Oracle diff: every DC converges to the exact acknowledged state.
    for dc in 0..2u8 {
        let mut reader = cluster.session(dc);
        expect_converges(
            &mut reader,
            &oracle,
            Duration::from_secs(10),
            &format!("DC {dc} after kill/restart"),
        );
    }

    assert_eq!(cluster.tcp_dropped_frames(), 0);
    cluster.stop();
    let _ = std::fs::remove_dir_all(&root);
}

/// The same kill-and-restart oracle under `FsyncPolicy::Window`: the
/// WAL defers its fsync up to a few milliseconds / few KiB to amortize
/// syscalls, but the engine *holds acknowledgements until the window's
/// fsync lands* — so the policy's promise to the client is exactly
/// `Always`'s, and an abrupt kill must still lose no acknowledged
/// write. This is the end-to-end proof that held responses never
/// outrun their group commit.
#[test]
fn kill_and_restart_preserves_acknowledged_writes_under_window() {
    let root = tmp_root("window");
    let mut cluster = ClusterBuilder::new()
        .dcs(2)
        .partitions(2)
        .durable(&root)
        .fsync(FsyncPolicy::Window {
            max_delay: Duration::from_millis(2),
            max_bytes: 8 * 1024,
        })
        .checkpoint_interval(Duration::from_millis(25))
        .replication_tick(Duration::from_millis(1))
        .gossip_tick(Duration::from_millis(2))
        .session_timeout(Duration::from_secs(10))
        .build();

    let mut a = session_at(&cluster, 0, 0);
    let mut b = session_at(&cluster, 1, 0);
    let keys: Vec<Key> = (0..8u64).map(Key).collect();
    let mut oracle = HashMap::new();

    for round in 1..=10u64 {
        for (ki, key) in keys.iter().enumerate() {
            let v = round * 1_000 + ki as u64;
            let s = if ki % 2 == 0 { &mut a } else { &mut b };
            put(s, &mut oracle, *key, v);
        }
    }

    // Kill the victim mid-stream; the survivors keep committing —
    // every one of those acks rode a closed fsync window.
    cluster.kill_partition(1, 1);
    for round in 11..=18u64 {
        for (ki, key) in keys.iter().enumerate() {
            if ki % 2 == 0 {
                put(&mut a, &mut oracle, *key, round * 1_000 + ki as u64);
            }
        }
    }
    cluster.restart_partition(1, 1);
    for round in 19..=22u64 {
        for (ki, key) in keys.iter().enumerate() {
            if ki % 2 == 1 {
                put(&mut b, &mut oracle, *key, round * 1_000 + ki as u64);
            }
        }
    }

    for dc in 0..2u8 {
        let mut reader = cluster.session(dc);
        expect_converges(
            &mut reader,
            &oracle,
            Duration::from_secs(10),
            &format!("DC {dc} after kill/restart under Window"),
        );
    }
    assert_eq!(cluster.tcp_dropped_frames(), 0);
    cluster.stop();
    let _ = std::fs::remove_dir_all(&root);
}

/// Flips bytes inside the victim's newest WAL generation between kill
/// and restart. Recovery must stay total — truncate at the damage, no
/// panic — and since the victim's log held only *replicated* state (all
/// writers lived elsewhere), catch-up from the sibling must still
/// converge the cluster to the full acknowledged state.
#[test]
fn corrupted_wal_tail_recovers_and_catches_up() {
    let root = tmp_root("corrupt");
    let mut cluster = ClusterBuilder::new()
        .dcs(2)
        .partitions(2)
        .durable(&root)
        .fsync(FsyncPolicy::Always)
        .checkpoint_interval(Duration::ZERO) // one generation: damage it
        .replication_tick(Duration::from_millis(1))
        .gossip_tick(Duration::from_millis(2))
        .session_timeout(Duration::from_secs(10))
        .build();

    let mut w = session_at(&cluster, 0, 0);
    let keys: Vec<Key> = (0..6u64).map(Key).collect();
    let mut oracle = HashMap::new();
    for round in 1..=10u64 {
        for (ki, key) in keys.iter().enumerate() {
            put(&mut w, &mut oracle, *key, round * 100 + ki as u64);
        }
    }
    // Let replication land on the victim before the crash.
    std::thread::sleep(Duration::from_millis(50));

    cluster.kill_partition(1, 1);
    corrupt_newest_wal(&root.join("dc1_p1"));
    cluster.restart_partition(1, 1);

    for dc in 0..2u8 {
        let mut reader = cluster.session(dc);
        expect_converges(
            &mut reader,
            &oracle,
            Duration::from_secs(10),
            &format!("DC {dc} after corrupted-tail restart"),
        );
    }
    cluster.stop();
    let _ = std::fs::remove_dir_all(&root);
}

/// Damages the highest-numbered `wal.N` in `dir`: one byte flipped
/// around 60% of the file and the final byte, emulating bit rot plus a
/// torn write.
fn corrupt_newest_wal(dir: &Path) {
    let mut newest: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if let Some(n) = name.strip_prefix("wal.").and_then(|s| s.parse::<u64>().ok()) {
            if newest.as_ref().is_none_or(|(m, _)| n > *m) {
                newest = Some((n, path));
            }
        }
    }
    let (_, path) = newest.expect("victim must have a WAL");
    let mut bytes = std::fs::read(&path).unwrap();
    assert!(!bytes.is_empty(), "victim WAL must not be empty");
    let mid = bytes.len() * 6 / 10;
    bytes[mid] ^= 0x40;
    *bytes.last_mut().unwrap() ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
}

/// Graceful shutdown seals every log (flushing even under
/// `FsyncPolicy::Off`), and a cold start from the same directory serves
/// everything back — the recovery path with no crash and no catch-up.
#[test]
fn graceful_stop_then_cold_start_serves_everything() {
    let root = tmp_root("coldstart");
    let keys: Vec<Key> = (0..6u64).map(Key).collect();
    let mut oracle = HashMap::new();
    {
        let cluster = ClusterBuilder::new()
            .dcs(2)
            .partitions(2)
            .durable(&root)
            .fsync(FsyncPolicy::Off) // the seal, not the policy, must save us
            .build();
        let mut w0 = cluster.session(0);
        let mut w1 = cluster.session(1);
        for round in 1..=8u64 {
            for (ki, key) in keys.iter().enumerate() {
                let v = round * 10 + ki as u64;
                let s = if ki % 2 == 0 { &mut w0 } else { &mut w1 };
                put(s, &mut oracle, *key, v);
            }
        }
        cluster.stop();
    }

    let cluster = ClusterBuilder::new()
        .dcs(2)
        .partitions(2)
        .durable(&root)
        .build();
    for dc in 0..2u8 {
        let mut reader = cluster.session(dc);
        expect_converges(
            &mut reader,
            &oracle,
            Duration::from_secs(10),
            &format!("DC {dc} after cold start"),
        );
    }
    cluster.stop();
    let _ = std::fs::remove_dir_all(&root);
}
