//! The external consistency oracle, shared between the synchronous-pump
//! invariant tests (`causal_invariants.rs`) and the live-cluster
//! transport tests (`tcp_cluster.rs`).
//!
//! The oracle tracks, for every committed transaction, its write-set and
//! its causal dependencies (values it read + its session predecessor) and
//! checks that whenever a snapshot reveals a transaction T, it also
//! reveals (at least) everything T causally depends on — the paper's
//! §II-C definition of a causal snapshot — plus atomic visibility and
//! the per-session guarantees (read-your-writes, monotonic reads).

use std::collections::{HashMap, HashSet};
use wren::clock::Timestamp;
use wren::protocol::Key;

/// A transaction's identity in the oracle: `(client id, session seq)`,
/// exactly what [`marker`](super::marker) encodes into written values.
pub type Marker = (u32, u32);

/// Oracle record for one committed transaction.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// LWW order key of this transaction's writes: (ct, dc, client-id).
    pub order: (Timestamp, u8, u32),
    /// Keys written.
    pub writes: Vec<Key>,
    /// Direct causal dependencies (other committed markers).
    pub deps: Vec<Marker>,
}

/// The oracle: every committed transaction by its marker.
#[derive(Default)]
pub struct Oracle {
    pub txs: HashMap<Marker, TxRecord>,
}

#[allow(dead_code)]
impl Oracle {
    /// All transitive dependencies of `m`, including itself.
    pub fn causal_past(&self, m: Marker) -> HashSet<Marker> {
        let mut past = HashSet::new();
        let mut stack = vec![m];
        while let Some(cur) = stack.pop() {
            if past.insert(cur) {
                if let Some(rec) = self.txs.get(&cur) {
                    stack.extend(rec.deps.iter().copied());
                }
            }
        }
        past
    }

    /// Asserts that one transaction's reads form a causal snapshot.
    ///
    /// For every observed writer W and every transaction X in W's causal
    /// past that wrote a key `k` this transaction also read: the observed
    /// version of `k` must be X's write or something LWW-newer. (If the
    /// read returned `None`, X must not exist.)
    pub fn check_causal_snapshot(&self, observed: &[(Key, Option<Marker>)]) {
        let observed_map: HashMap<Key, Option<Marker>> = observed.iter().cloned().collect();
        for (_, seen) in observed {
            let Some(writer) = seen else { continue };
            for dep in self.causal_past(*writer) {
                let Some(dep_rec) = self.txs.get(&dep) else {
                    continue;
                };
                for k in &dep_rec.writes {
                    let Some(seen_for_k) = observed_map.get(k) else {
                        continue; // this tx did not read k
                    };
                    match seen_for_k {
                        None => panic!(
                            "causal violation: snapshot shows {writer:?} but read of \
                             {k:?} returned nothing, despite dependency {dep:?} writing it"
                        ),
                        Some(seen_writer) => {
                            let seen_order = self.txs[seen_writer].order;
                            assert!(
                                seen_order >= dep_rec.order,
                                "causal violation: snapshot shows {writer:?} (which \
                                 depends on {dep:?} writing {k:?} at {:?}) but the read \
                                 of {k:?} returned the older {seen_writer:?} at {:?}",
                                dep_rec.order,
                                seen_order
                            );
                        }
                    }
                }
            }
        }
    }

    /// Asserts atomic visibility: if the snapshot shows writer W for key
    /// k, then for every other key k2 ∈ W.writes that was also read, the
    /// observed version is W's or LWW-newer.
    pub fn check_atomicity(&self, observed: &[(Key, Option<Marker>)]) {
        let observed_map: HashMap<Key, Option<Marker>> = observed.iter().cloned().collect();
        for (_, seen) in observed {
            let Some(writer) = seen else { continue };
            let rec = &self.txs[writer];
            for k2 in &rec.writes {
                if let Some(seen2) = observed_map.get(k2) {
                    match seen2 {
                        None => panic!(
                            "atomicity violation: {writer:?} visible on one key but \
                             its write of {k2:?} is absent"
                        ),
                        Some(w2) => assert!(
                            self.txs[w2].order >= rec.order,
                            "atomicity violation: {writer:?} visible but {k2:?} shows \
                             older {w2:?}"
                        ),
                    }
                }
            }
        }
    }
}

/// One client session's state for the oracle.
#[allow(dead_code)] // each test binary uses a different subset
pub struct SessionOracle {
    /// Last committed marker of this session (session order dependency).
    pub last_commit: Option<Marker>,
    /// Everything this session has observed (for read dependencies).
    pub observed: Vec<Marker>,
    /// Per key: the newest order key this session has ever observed
    /// (monotonic reads check).
    pub high_water: HashMap<Key, (Timestamp, u8, u32)>,
    /// Per key: this session's own latest write (read-your-writes check).
    pub own_writes: HashMap<Key, Marker>,
    /// Next sequence number for this session's markers.
    pub seq: u32,
}

#[allow(dead_code)]
impl SessionOracle {
    pub fn new() -> SessionOracle {
        SessionOracle {
            last_commit: None,
            observed: Vec::new(),
            high_water: HashMap::new(),
            own_writes: HashMap::new(),
            seq: 0,
        }
    }

    /// Checks one read snapshot against the causal + atomicity oracle
    /// and this session's guarantees (read-your-writes, monotonic
    /// reads), then folds the observations into the session state.
    pub fn observe(&mut self, oracle: &Oracle, observed: &[(Key, Option<Marker>)]) {
        oracle.check_causal_snapshot(observed);
        oracle.check_atomicity(observed);

        for (k, seen) in observed {
            // Read-your-writes: must observe own write or newer.
            if let Some(own) = self.own_writes.get(k) {
                match seen {
                    None => panic!("read-your-writes violated: own write of {k:?} lost"),
                    Some(w) => {
                        let own_order = oracle.txs[own].order;
                        assert!(
                            oracle.txs[w].order >= own_order,
                            "read-your-writes violated on {k:?}: saw {w:?}, own {own:?}"
                        );
                    }
                }
            }
            // Monotonic reads per key.
            if let Some(w) = seen {
                let order = oracle.txs[w].order;
                if let Some(high) = self.high_water.get(k) {
                    assert!(
                        order >= *high,
                        "monotonic reads violated on {k:?}: {order:?} < {high:?}"
                    );
                }
                self.high_water.insert(*k, order);
                self.observed.push(*w);
            }
        }
    }

    /// Records this session's committed update transaction `me` in the
    /// oracle: its LWW order, its write-set, and its direct causal
    /// dependencies (everything observed so far + the session
    /// predecessor).
    pub fn record_commit(
        &mut self,
        oracle: &mut Oracle,
        me: Marker,
        ct: Timestamp,
        dc: u8,
        writes: Vec<Key>,
    ) {
        assert!(!ct.is_zero(), "update transaction must get a timestamp");
        let mut deps: Vec<Marker> = self.observed.clone();
        if let Some(prev) = self.last_commit {
            deps.push(prev);
        }
        deps.sort_unstable();
        deps.dedup();
        for k in &writes {
            self.own_writes.insert(*k, me);
        }
        oracle.txs.insert(
            me,
            TxRecord {
                order: (ct, dc, me.0),
                writes,
                deps,
            },
        );
        self.last_commit = Some(me);
    }
}

impl Default for SessionOracle {
    fn default() -> Self {
        SessionOracle::new()
    }
}
