//! Shared test infrastructure: a synchronous message pump over Wren
//! server state machines, with optional withholding of cross-DC traffic
//! (to exercise network partitions between DCs).

pub mod oracle;

use bytes::Bytes;
use wren::clock::{SkewedClock, Timestamp};
use wren::core::{WrenClient, WrenConfig, WrenServer};
use wren::protocol::{ClientId, Dest, Key, Outgoing, ServerId, Value, WrenMsg};

/// A synchronous Wren cluster pump.
pub struct WrenNet {
    pub cfg: WrenConfig,
    pub servers: Vec<WrenServer>,
    pub to_clients: Vec<(ClientId, WrenMsg)>,
    pub now: u64,
    /// When true, cross-DC messages are queued instead of delivered.
    pub partitioned: bool,
    withheld: Vec<(Dest, ServerId, WrenMsg)>,
}

#[allow(dead_code)]
impl WrenNet {
    pub fn new(m: u8, n: u16) -> Self {
        Self::with_config(WrenConfig::new(m, n))
    }

    pub fn with_config(cfg: WrenConfig) -> Self {
        let mut servers = Vec::new();
        for dc in 0..cfg.n_dcs {
            for p in 0..cfg.n_partitions {
                servers.push(WrenServer::new(
                    ServerId::new(dc, p),
                    cfg,
                    SkewedClock::perfect(),
                ));
            }
        }
        WrenNet {
            cfg,
            servers,
            to_clients: Vec::new(),
            now: 0,
            partitioned: false,
            withheld: Vec::new(),
        }
    }

    fn idx(&self, id: ServerId) -> usize {
        id.dc.index() * self.cfg.n_partitions as usize + id.partition.index()
    }

    pub fn server(&mut self, id: ServerId) -> &mut WrenServer {
        let i = self.idx(id);
        &mut self.servers[i]
    }

    fn crosses_dc(&self, from: &Dest, to: ServerId) -> bool {
        match from {
            Dest::Server(s) => s.dc != to.dc,
            Dest::Client(_) => false,
        }
    }

    pub fn drain(&mut self, mut pending: Vec<(Dest, ServerId, WrenMsg)>) {
        while let Some((from, to_server, msg)) = pending.pop() {
            if self.partitioned && self.crosses_dc(&from, to_server) {
                self.withheld.push((from, to_server, msg));
                continue;
            }
            let now = self.now;
            let i = self.idx(to_server);
            let mut out = Vec::new();
            self.servers[i].handle(from, msg, now, &mut out);
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => pending.push((Dest::Server(to_server), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
    }

    /// Heals the partition: delivers everything withheld, in order.
    pub fn heal(&mut self) {
        self.partitioned = false;
        let mut withheld = std::mem::take(&mut self.withheld);
        withheld.reverse(); // drain() pops from the back
        self.drain(withheld);
    }

    #[allow(clippy::wrong_self_convention)] // "from" = message provenance, not conversion
    pub fn from_client(&mut self, client: ClientId, coordinator: ServerId, msg: WrenMsg) {
        self.drain(vec![(Dest::Client(client), coordinator, msg)]);
    }

    pub fn client_resp(&mut self, client: ClientId) -> WrenMsg {
        let pos = self
            .to_clients
            .iter()
            .position(|(c, _)| *c == client)
            .expect("no response for client");
        self.to_clients.remove(pos).1
    }

    fn run_ticks(&mut self, advance: u64, which: Tick) {
        self.now += advance;
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            match which {
                Tick::Replication => {
                    self.servers[i].on_replication_tick(self.now, &mut out);
                }
                Tick::Gossip => self.servers[i].on_gossip_tick(self.now, &mut out),
                Tick::Gc => {
                    self.servers[i].on_gc_tick(self.now, &mut out);
                }
            }
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    pub fn tick_replication(&mut self, advance: u64) {
        self.run_ticks(advance, Tick::Replication);
    }

    pub fn tick_gossip(&mut self, advance: u64) {
        self.run_ticks(advance, Tick::Gossip);
    }

    pub fn tick_gc(&mut self, advance: u64) {
        self.run_ticks(advance, Tick::Gc);
    }

    pub fn stabilize(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.tick_replication(1_000);
            self.tick_gossip(1_000);
        }
    }
}

#[derive(Clone, Copy)]
enum Tick {
    Replication,
    Gossip,
    Gc,
}

/// Runs a full transaction: start → read(keys) → write(kvs) → commit.
/// Returns (observed reads, commit timestamp).
#[allow(dead_code)]
pub fn run_tx(
    net: &mut WrenNet,
    client: &mut WrenClient,
    reads: &[Key],
    writes: &[(Key, Value)],
) -> (Vec<(Key, Option<Value>)>, Timestamp) {
    let coord = client.coordinator();
    let id = client.id();
    net.from_client(id, coord, client.start());
    client.on_start_resp(net.client_resp(id));

    let mut results = Vec::new();
    if !reads.is_empty() {
        let outcome = client.read(reads);
        results.extend(outcome.local.clone());
        if let Some(req) = outcome.request {
            net.from_client(id, coord, req);
            results.extend(client.on_read_resp(net.client_resp(id)));
        }
    }
    if !writes.is_empty() {
        client.write(writes.iter().cloned());
    }
    net.from_client(id, coord, client.commit());
    let ct = client.on_commit_resp(net.client_resp(id));
    (results, ct)
}

/// Encodes a `(client, seq)` marker as an 8-byte value.
#[allow(dead_code)]
pub fn marker(client: u32, seq: u32) -> Value {
    let mut buf = vec![0u8; 8];
    buf[..4].copy_from_slice(&client.to_le_bytes());
    buf[4..].copy_from_slice(&seq.to_le_bytes());
    Bytes::from(buf)
}

/// Decodes a marker value.
#[allow(dead_code)]
pub fn decode_marker(v: &Value) -> (u32, u32) {
    (
        u32::from_le_bytes(v[..4].try_into().unwrap()),
        u32::from_le_bytes(v[4..8].try_into().unwrap()),
    )
}

/// `n` keys guaranteed to live on distinct partitions.
#[allow(dead_code)]
pub fn keys_on_distinct_partitions(n_partitions: u16, n: usize) -> Vec<Key> {
    let mut keys = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut k = 0u64;
    while keys.len() < n {
        let key = Key(k);
        if seen.insert(key.partition(n_partitions)) {
            keys.push(key);
        }
        k += 1;
    }
    keys
}

// ---------------------------------------------------------------------
// Cure twin of the pump, with tick-until-response reads (Cure blocks).
// ---------------------------------------------------------------------

use wren::cure::{CureClient, CureConfig, CureServer};
use wren::protocol::CureMsg;

/// A synchronous Cure cluster pump.
#[allow(dead_code)]
pub struct CureNet {
    pub cfg: CureConfig,
    pub servers: Vec<CureServer>,
    pub to_clients: Vec<(ClientId, CureMsg)>,
    pub now: u64,
}

#[allow(dead_code)]
impl CureNet {
    pub fn new(cfg: CureConfig, skews: &[i64]) -> Self {
        let mut servers = Vec::new();
        for dc in 0..cfg.n_dcs {
            for p in 0..cfg.n_partitions {
                let idx = dc as usize * cfg.n_partitions as usize + p as usize;
                let skew = skews.get(idx).copied().unwrap_or(0);
                servers.push(CureServer::new(
                    ServerId::new(dc, p),
                    cfg,
                    SkewedClock::new(skew, 0.0),
                ));
            }
        }
        CureNet {
            cfg,
            servers,
            to_clients: Vec::new(),
            now: 1_000,
        }
    }

    fn idx(&self, id: ServerId) -> usize {
        id.dc.index() * self.cfg.n_partitions as usize + id.partition.index()
    }

    pub fn drain(&mut self, mut pending: Vec<(Dest, ServerId, CureMsg)>) {
        while let Some((from, to_server, msg)) = pending.pop() {
            let now = self.now;
            let i = self.idx(to_server);
            let mut out = Vec::new();
            self.servers[i].handle(from, msg, now, &mut out);
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => pending.push((Dest::Server(to_server), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
    }

    #[allow(clippy::wrong_self_convention)] // "from" = message provenance, not conversion
    pub fn from_client(&mut self, client: ClientId, coordinator: ServerId, msg: CureMsg) {
        self.drain(vec![(Dest::Client(client), coordinator, msg)]);
    }

    pub fn try_resp(&mut self, client: ClientId) -> Option<CureMsg> {
        let pos = self.to_clients.iter().position(|(c, _)| *c == client)?;
        Some(self.to_clients.remove(pos).1)
    }

    pub fn resp(&mut self, client: ClientId) -> CureMsg {
        self.try_resp(client).expect("no response for client")
    }

    pub fn tick_replication(&mut self, advance: u64) {
        self.now += advance;
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            self.servers[i].on_replication_tick(self.now, &mut out);
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    pub fn tick_gossip(&mut self, advance: u64) {
        self.now += advance;
        let mut cascades = Vec::new();
        for i in 0..self.servers.len() {
            let mut out = Vec::new();
            self.servers[i].on_gossip_tick(self.now, &mut out);
            let from = self.servers[i].id();
            for Outgoing { to, msg } in out {
                match to {
                    Dest::Server(s) => cascades.push((Dest::Server(from), s, msg)),
                    Dest::Client(c) => self.to_clients.push((c, msg)),
                }
            }
        }
        self.drain(cascades);
    }

    pub fn stabilize(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.tick_replication(1_000);
            self.tick_gossip(1_000);
        }
    }
}

/// Runs a full Cure transaction, ticking through any server-side read
/// blocking. Returns (observed reads, commit vector).
#[allow(dead_code)]
pub fn run_cure_tx(
    net: &mut CureNet,
    client: &mut CureClient,
    reads: &[Key],
    writes: &[(Key, Value)],
) -> (Vec<(Key, Option<Value>)>, wren::clock::VersionVector) {
    let coord = client.coordinator();
    let id = client.id();
    net.from_client(id, coord, client.start());
    client.on_start_resp(net.resp(id));

    let mut results = Vec::new();
    if !reads.is_empty() {
        let outcome = client.read(reads);
        results.extend(outcome.local.clone());
        if let Some(req) = outcome.request {
            net.from_client(id, coord, req);
            let mut guard = 0;
            loop {
                if let Some(resp) = net.try_resp(id) {
                    results.extend(client.on_read_resp(resp));
                    break;
                }
                net.tick_replication(500);
                guard += 1;
                assert!(guard < 10_000, "cure read never unblocked");
            }
        }
    }
    if !writes.is_empty() {
        client.write(writes.iter().cloned());
    }
    net.from_client(id, coord, client.commit());
    let cv = client.on_commit_resp(net.resp(id));
    (results, cv)
}
