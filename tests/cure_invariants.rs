//! The same randomized causal oracle as `causal_invariants.rs`, run
//! against the **Cure baseline** (with clock skew, so reads genuinely
//! block and unblock): a fair comparison requires the baseline to be a
//! correct TCC system too.

mod common;

use common::{decode_marker, marker, run_cure_tx, CureNet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use wren::clock::Timestamp;
use wren::cure::{CureClient, CureConfig};
use wren::protocol::{ClientId, Key, ServerId};

#[derive(Debug, Clone)]
struct TxRecord {
    order: (Timestamp, u8, u32),
    writes: Vec<Key>,
    deps: Vec<(u32, u32)>,
}

#[derive(Default)]
struct Oracle {
    txs: HashMap<(u32, u32), TxRecord>,
}

impl Oracle {
    fn causal_past(&self, m: (u32, u32)) -> HashSet<(u32, u32)> {
        let mut past = HashSet::new();
        let mut stack = vec![m];
        while let Some(cur) = stack.pop() {
            if past.insert(cur) {
                if let Some(rec) = self.txs.get(&cur) {
                    stack.extend(rec.deps.iter().copied());
                }
            }
        }
        past
    }

    fn check(&self, observed: &[(Key, Option<(u32, u32)>)]) {
        let observed_map: HashMap<Key, Option<(u32, u32)>> = observed.iter().cloned().collect();
        for (_, seen) in observed {
            let Some(writer) = seen else { continue };
            // Causal closure.
            for dep in self.causal_past(*writer) {
                let Some(dep_rec) = self.txs.get(&dep) else {
                    continue;
                };
                for k in &dep_rec.writes {
                    if let Some(seen_for_k) = observed_map.get(k) {
                        match seen_for_k {
                            None => panic!(
                                "Cure causal violation: {writer:?} visible but dependency \
                                 {dep:?}'s write of {k:?} is absent"
                            ),
                            Some(sw) => assert!(
                                self.txs[sw].order >= dep_rec.order,
                                "Cure causal violation on {k:?}: saw {sw:?} older than \
                                 dependency {dep:?}"
                            ),
                        }
                    }
                }
            }
            // Atomic visibility.
            let rec = &self.txs[writer];
            for k2 in &rec.writes {
                if let Some(seen2) = observed_map.get(k2) {
                    match seen2 {
                        None => panic!("Cure atomicity violation: {writer:?} partially visible"),
                        Some(w2) => assert!(
                            self.txs[w2].order >= rec.order,
                            "Cure atomicity violation: {writer:?} visible, {k2:?} older"
                        ),
                    }
                }
            }
        }
    }
}

fn random_cure_history(seed: u64, cfg: CureConfig, clients_per_dc: usize, txs: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Deterministic skews: alternate fast/slow servers so blocking happens.
    let skews: Vec<i64> = (0..cfg.n_dcs as usize * cfg.n_partitions as usize)
        .map(|i| if i % 2 == 0 { 1_500 } else { -1_500 })
        .collect();
    let mut net = CureNet::new(cfg, &skews);
    let key_pool: Vec<Key> = (0..48).map(Key).collect();

    let mut clients: Vec<CureClient> = Vec::new();
    struct Session {
        last_commit: Option<(u32, u32)>,
        observed: Vec<(u32, u32)>,
        high_water: HashMap<Key, (Timestamp, u8, u32)>,
        own_writes: HashMap<Key, (u32, u32)>,
        seq: u32,
    }
    let mut sessions: Vec<Session> = Vec::new();
    for dc in 0..cfg.n_dcs {
        for c in 0..clients_per_dc {
            let id = ClientId((dc as u32) * 100 + c as u32);
            let coord = ServerId::new(dc, rng.gen_range(0..cfg.n_partitions));
            clients.push(CureClient::new(id, coord, cfg.n_dcs));
            sessions.push(Session {
                last_commit: None,
                observed: Vec::new(),
                high_water: HashMap::new(),
                own_writes: HashMap::new(),
                seq: 0,
            });
        }
    }
    let mut oracle = Oracle::default();

    for _ in 0..txs {
        match rng.gen_range(0..10) {
            0..=2 => net.tick_replication(rng.gen_range(100..1500)),
            3..=4 => net.tick_gossip(rng.gen_range(100..1500)),
            _ => {}
        }

        let ci = rng.gen_range(0..clients.len());
        let reads: Vec<Key> = (0..rng.gen_range(1..5))
            .map(|_| key_pool[rng.gen_range(0..key_pool.len())])
            .collect();
        let mut writes: Vec<Key> = (0..rng.gen_range(1..3))
            .map(|_| key_pool[rng.gen_range(0..key_pool.len())])
            .collect();
        writes.dedup();

        let session = &mut sessions[ci];
        session.seq += 1;
        let me = (clients[ci].id().0, session.seq);
        let kvs: Vec<_> = writes.iter().map(|k| (*k, marker(me.0, me.1))).collect();

        let (results, cv) = run_cure_tx(&mut net, &mut clients[ci], &reads, &kvs);
        let observed: Vec<(Key, Option<(u32, u32)>)> = results
            .iter()
            .map(|(k, v)| (*k, v.as_ref().map(decode_marker)))
            .collect();

        oracle.check(&observed);

        for (k, seen) in &observed {
            if let Some(own) = session.own_writes.get(k) {
                match seen {
                    None => panic!("Cure read-your-writes violated on {k:?}"),
                    Some(w) => assert!(
                        oracle.txs[w].order >= oracle.txs[own].order,
                        "Cure read-your-writes violated on {k:?}"
                    ),
                }
            }
            if let Some(w) = seen {
                let order = oracle.txs[w].order;
                if let Some(high) = session.high_water.get(k) {
                    assert!(order >= *high, "Cure monotonic reads violated on {k:?}");
                }
                session.high_water.insert(*k, order);
                session.observed.push(*w);
            }
        }

        let ct = cv.get(clients[ci].coordinator().dc.index());
        assert!(!ct.is_zero());
        let mut deps: Vec<(u32, u32)> = session.observed.clone();
        if let Some(prev) = session.last_commit {
            deps.push(prev);
        }
        deps.sort_unstable();
        deps.dedup();
        oracle.txs.insert(
            me,
            TxRecord {
                order: (ct, clients[ci].coordinator().dc.0, me.0),
                writes: writes.clone(),
                deps,
            },
        );
        session.last_commit = Some(me);
        for k in &writes {
            session.own_writes.insert(*k, me);
        }
    }
}

#[test]
fn cure_random_histories_single_dc() {
    for seed in 0..4 {
        random_cure_history(seed, CureConfig::cure(1, 4), 3, 100);
    }
}

#[test]
fn cure_random_histories_three_dcs() {
    for seed in 0..4 {
        random_cure_history(200 + seed, CureConfig::cure(3, 2), 2, 100);
    }
}

#[test]
fn hcure_random_histories_three_dcs() {
    for seed in 0..4 {
        random_cure_history(300 + seed, CureConfig::h_cure(3, 2), 2, 100);
    }
}

#[test]
fn cure_tree_gossip_histories() {
    let cfg = CureConfig {
        gossip_fanout: 2,
        ..CureConfig::cure(2, 4)
    };
    for seed in 0..3 {
        random_cure_history(400 + seed, cfg, 2, 100);
    }
}
