//! Partition failover over the **live TCP fabrics**: the same
//! kill-and-restart oracle `crash_recovery.rs` runs over in-process
//! channels, executed against real sockets — the victim's listener
//! closes, every one of its connections dies, peers park the dead link
//! and re-dial with backoff, sessions reconnect and retry — plus
//! targeted checks for the pieces channels cannot exercise: riding out
//! a coordinator restart inside one session, and catch-up after a
//! fault-injected link sever.

use bytes::Bytes;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use wren::protocol::{Key, ServerId};
use wren::rt::{Cluster, ClusterBuilder, FaultPlan, FsyncPolicy, RtError, Session};

fn bval(i: u64) -> Bytes {
    Bytes::from(i.to_le_bytes().to_vec())
}

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wren-tcpfail-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Allocates sessions until one lands on the wanted coordinator
/// (round-robin guarantees a hit within `n_partitions` tries).
fn session_at(cluster: &Cluster, dc: u8, p: u16) -> Session {
    for _ in 0..cluster.n_partitions() {
        let s = cluster.session(dc);
        if s.coordinator() == ServerId::new(dc, p) {
            return s;
        }
    }
    unreachable!("round-robin must cycle through every partition");
}

/// Polls until one snapshot serves every `(key, value)` pair in
/// `expected`, or panics at the deadline. Transient session errors
/// (a link still re-dialing) retry rather than fail.
fn expect_converges(
    session: &mut Session,
    expected: &HashMap<Key, u64>,
    timeout: Duration,
    what: &str,
) {
    let deadline = Instant::now() + timeout;
    let keys: Vec<Key> = expected.keys().copied().collect();
    let mut last = None;
    loop {
        session.begin().unwrap();
        match session.read(&keys) {
            Ok(got) => {
                let _ = session.commit();
                let ok = got.iter().all(|(k, v)| {
                    v.as_ref().map(|b| u64::from_le_bytes(b.as_ref().try_into().unwrap()))
                        == Some(expected[k])
                });
                if ok {
                    return;
                }
                last = Some(got);
            }
            // Link churn retries; a *timeout* is a blocked read, which
            // nonblocking reads forbid even right after a failover.
            Err(RtError::Timeout) => panic!("{what}: a read blocked (timed out)"),
            Err(_) => {}
        }
        if Instant::now() >= deadline {
            panic!("{what}: did not converge to the acknowledged state; last snapshot {last:?}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Commits `value` to `key` through `session`, updating the oracle map.
fn put(session: &mut Session, oracle: &mut HashMap<Key, u64>, key: Key, value: u64) {
    session.begin().unwrap();
    session.write(key, bval(value));
    session.commit().unwrap();
    oracle.insert(key, value);
}

/// The crash-recovery oracle over real sockets, on **both** fabrics: a
/// partition dies abruptly (listener closed, connections severed),
/// traffic continues around it, and after restart every DC converges to
/// exactly the acknowledged writer-per-key state — the sibling re-ships
/// what died in flight, the WAL re-materializes what the victim itself
/// acknowledged.
#[test]
fn kill_and_restart_preserves_writes_over_both_fabrics() {
    for (fabric_name, fabric) in [
        ("reactor", ClusterBuilder::tcp as fn(ClusterBuilder) -> ClusterBuilder),
        ("threaded", ClusterBuilder::tcp_threaded),
    ] {
        let root = tmp_root(fabric_name);
        let mut cluster = fabric(ClusterBuilder::new().dcs(2).partitions(2))
            .durable(&root)
            .fsync(FsyncPolicy::Always)
            .checkpoint_interval(Duration::from_millis(25))
            .replication_tick(Duration::from_millis(1))
            .gossip_tick(Duration::from_millis(2))
            .session_timeout(Duration::from_secs(10))
            .build();

        // Writers on partition 0 in each DC: the victim is (1,1).
        let mut a = session_at(&cluster, 0, 0);
        let mut b = session_at(&cluster, 1, 0);
        let keys: Vec<Key> = (0..8u64).map(Key).collect();
        let mut oracle = HashMap::new();

        // Phase 1: both DCs write, checkpoints rotating underneath.
        for round in 1..=8u64 {
            for (ki, key) in keys.iter().enumerate() {
                let v = round * 1_000 + ki as u64;
                let s = if ki % 2 == 0 { &mut a } else { &mut b };
                put(s, &mut oracle, *key, v);
            }
        }

        // Phase 2: kill (1,1); DC 0 keeps writing through the outage
        // (its replication frames to the victim die with the sockets).
        cluster.kill_partition(1, 1);
        for round in 9..=14u64 {
            for (ki, key) in keys.iter().enumerate() {
                if ki % 2 == 0 {
                    put(&mut a, &mut oracle, *key, round * 1_000 + ki as u64);
                }
            }
        }

        // Phase 3: restart — the address rebinds, peers un-park their
        // links, recovery + catch-up + stabilization run. The pre-kill
        // DC-1 session must keep working across the outage.
        cluster.restart_partition(1, 1);
        for round in 15..=18u64 {
            for (ki, key) in keys.iter().enumerate() {
                if ki % 2 == 1 {
                    put(&mut b, &mut oracle, *key, round * 1_000 + ki as u64);
                }
            }
        }

        for dc in 0..2u8 {
            let mut reader = cluster.session(dc);
            expect_converges(
                &mut reader,
                &oracle,
                Duration::from_secs(15),
                &format!("{fabric_name}: DC {dc} after kill/restart"),
            );
        }
        cluster.stop();
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// A session whose **coordinator** is the victim: its socket dies with
/// the kill, and after the restart the same session object must
/// transparently re-dial and keep serving — begins and reads retry over
/// a fresh connection, session guarantees intact.
#[test]
fn session_rides_out_coordinator_restart() {
    let root = tmp_root("ride-out");
    let mut cluster = ClusterBuilder::new()
        .dcs(2)
        .partitions(2)
        .tcp()
        .durable(&root)
        .fsync(FsyncPolicy::Always)
        .replication_tick(Duration::from_millis(1))
        .gossip_tick(Duration::from_millis(2))
        .session_timeout(Duration::from_secs(10))
        .dial_retry_budget(Duration::from_millis(500))
        .build();

    let mut s = session_at(&cluster, 0, 1);
    let mut oracle = HashMap::new();
    for (i, key) in (0..4u64).map(Key).enumerate() {
        put(&mut s, &mut oracle, key, 100 + i as u64);
    }

    cluster.kill_partition(0, 1);
    std::thread::sleep(Duration::from_millis(30));
    cluster.restart_partition(0, 1);

    // Same session, same coordinator, new socket underneath: writes
    // land and its own earlier writes stay visible (read-your-writes
    // across a coordinator crash).
    for (i, key) in (0..4u64).map(Key).enumerate() {
        put(&mut s, &mut oracle, key, 200 + i as u64);
    }
    expect_converges(
        &mut s,
        &oracle,
        Duration::from_secs(15),
        "victim-coordinator session after restart",
    );
    cluster.stop();
    let _ = std::fs::remove_dir_all(&root);
}

/// A cohort dies mid-prepare: the coordinator's in-doubt abort must be
/// **told** to the session — an explicit abort verdict (`RtError::
/// Aborted`) arriving around `tx_abort_timeout` — instead of the
/// session riding out its own much longer timeout in silence. The abort
/// is also visible in the merged metrics, server-side
/// (`tx_aborts_indoubt`) and client-side (`session_tx_aborted`), and
/// because the outcome is *known* (nothing applied) the same session
/// can immediately run its next transaction.
#[test]
fn indoubt_abort_replies_before_session_timeout() {
    let root = tmp_root("indoubt");
    let abort_after = Duration::from_millis(300);
    let session_timeout = Duration::from_secs(10);
    let mut cluster = ClusterBuilder::new()
        .dcs(1)
        .partitions(2)
        .tcp()
        .durable(&root)
        .fsync(FsyncPolicy::Always)
        .replication_tick(Duration::from_millis(1))
        .gossip_tick(Duration::from_millis(2))
        .session_timeout(session_timeout)
        .tx_abort_timeout(abort_after)
        .build();

    // A key owned by partition 1, written through a partition-0
    // coordinator: committing it needs a 2PC vote from partition 1.
    let victim = ServerId::new(0, 1);
    let remote_key = (0..u64::MAX)
        .map(Key)
        .find(|k| k.partition(2) == victim.partition)
        .expect("some key lands on partition 1");
    let mut s = session_at(&cluster, 0, 0);

    s.begin().unwrap();
    s.write(remote_key, bval(7));
    // Kill the cohort before the commit fans out: its prepare dies with
    // the sockets, the vote never arrives, the round is in doubt.
    cluster.kill_partition(0, 1);
    let started = Instant::now();
    let err = s
        .commit()
        .expect_err("the cohort is dead; the 2PC round must abort");
    let waited = started.elapsed();
    assert_eq!(
        err,
        RtError::Aborted,
        "the coordinator must report the abort explicitly"
    );
    assert!(
        waited >= abort_after / 2,
        "an abort verdict cannot precede the in-doubt timer; waited {waited:?}"
    );
    assert!(
        waited < session_timeout / 2,
        "the abort reply must arrive around tx_abort_timeout ({abort_after:?}), \
         not the session timeout ({session_timeout:?}); waited {waited:?}"
    );

    let snap = cluster.metrics();
    assert!(
        snap.counter("tx_aborts_indoubt") >= 1,
        "the coordinator must count the in-doubt abort: {:?}",
        snap.counters
    );
    assert!(
        snap.counter("session_tx_aborted") >= 1,
        "the session must count the explicit abort: {:?}",
        snap.counters
    );

    // Known outcome: nothing was applied, and the session is cleanly
    // reusable. After the victim restarts, the aborted write must not
    // have survived anywhere.
    cluster.restart_partition(0, 1);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        s.begin().unwrap();
        match s.read_one(remote_key) {
            Ok(v) => {
                let _ = s.commit();
                assert_eq!(v, None, "the aborted write must not be visible");
                break;
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("read after restart kept failing: {e}"),
        }
    }
    cluster.stop();
    let _ = std::fs::remove_dir_all(&root);
}

/// Cross-DC links severed by the fault plan (not a process death):
/// writes acknowledged inside the isolated DC must flow out after the
/// heal — EOF at the receiver opens the catch-up window, the sibling
/// re-scans, and the other DC converges without any restart.
#[test]
fn severed_links_catch_up_after_heal() {
    let plan = FaultPlan::seeded(0xD15C0);
    let cluster = ClusterBuilder::new()
        .dcs(2)
        .partitions(2)
        .tcp()
        .fault_plan(plan.clone())
        .replication_tick(Duration::from_millis(1))
        .gossip_tick(Duration::from_millis(2))
        .session_timeout(Duration::from_secs(10))
        .build();

    let mut w = session_at(&cluster, 0, 0);
    let keys: Vec<Key> = (0..6u64).map(Key).collect();
    let mut oracle = HashMap::new();
    for (ki, key) in keys.iter().enumerate() {
        put(&mut w, &mut oracle, *key, 1_000 + ki as u64);
    }

    // Island DC 0: replication and gossip frames crossing the boundary
    // sever their links; dials across it are refused.
    let dc0: Vec<ServerId> = (0..cluster.n_partitions()).map(|p| ServerId::new(0, p)).collect();
    plan.partition(&dc0);
    for (ki, key) in keys.iter().enumerate() {
        put(&mut w, &mut oracle, *key, 2_000 + ki as u64);
    }
    std::thread::sleep(Duration::from_millis(30));
    plan.heal();

    let mut reader = cluster.session(1);
    expect_converges(
        &mut reader,
        &oracle,
        Duration::from_secs(15),
        "DC 1 after partition heal",
    );
    assert!(
        plan.stats().injected() > 0,
        "the partition window must actually have severed traffic: {:?}",
        plan.stats()
    );
    cluster.stop();
}
